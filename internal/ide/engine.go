package ide

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/oracle"
)

// ErrNoCandidates is returned when the unlabeled candidate pool is empty
// at a point where the session needs one (initial example acquisition). It
// is re-exported by the facade for errors.Is across the API boundary.
var ErrNoCandidates = errors.New("ide: no unlabeled candidates available")

// ErrExplorationDone is returned by Propose when the session has nothing
// left to solicit — the label budget is spent or the unlabeled pool ran
// dry. It signals the caller to move on to Finish (result retrieval). It
// is re-exported by the facade for errors.Is across the API boundary.
var ErrExplorationDone = errors.New("ide: exploration complete")

// Config parameterizes an exploration session.
type Config struct {
	// BatchSize is B of Algorithm 1: the model retrains after every B new
	// labels. Zero selects 1 (retrain on every label, the most
	// interactive setting).
	BatchSize int
	// MaxLabels bounds user effort; the session stops after this many
	// solicited labels. Required.
	MaxLabels int
	// EstimatorFactory builds the predictive model used as uncertainty
	// estimator (Table 1: DWKNN). Required.
	EstimatorFactory func() learn.Classifier
	// Strategy is the query strategy (Table 1: uncertainty sampling via
	// least confidence). Required.
	Strategy al.Scorer
	// Seed drives the initial random example acquisition.
	Seed int64
	// SeedWithPositive bootstraps the labeled set with one known-relevant
	// example, modeling the standard IDE assumption that the user shows
	// one instance of what they seek (AIDE and DSM do the same). Without
	// it, random acquisition over a 0.1%-selectivity region wastes ~1000
	// labels before the first positive.
	SeedWithPositive bool
	// SeedCount asks for this many bootstrap positives (default 1) when
	// SeedWithPositive is set. Counts above 1 require a labeler
	// implementing MultiPositiveSeeder and serve disjunctive interests:
	// one example per relevant region keeps the model from collapsing
	// onto a single mode.
	SeedCount int
	// OnIteration, when set, observes every completed iteration.
	OnIteration func(it IterationInfo)
	// AfterPrepare, when set, runs once after provider preparation,
	// initial-example acquisition, and the first model fit — i.e. at the
	// boundary between initialization and the interactive loop. Experiment
	// harnesses snapshot I/O counters here.
	AfterPrepare func()
	// BeforeRetrieve, when set, runs after the last iteration and before
	// result retrieval — the other boundary of the interactive loop.
	BeforeRetrieve func()
	// Tracer, when set, receives one root "iteration" span per iteration
	// plus select/label/retrain child phases (providers add their own
	// phases, e.g. UEI's score/load/swap). Share it with the provider's
	// index so all spans land in one trace.
	Tracer *obs.Tracer
	// Registry, when set, receives the engine's instruments: the
	// ide_iteration_seconds latency histogram, phase histograms for
	// select/label/retrain, and ide_iterations_total / ide_labels_total
	// counters. The ide_fmeasure gauge is defined here too, for harnesses
	// that evaluate accuracy (see FMeasureGauge).
	Registry *obs.Registry
	// Workers enables batch candidate scoring during selection when > 1
	// and the Strategy implements al.BatchScorer: the pool is materialized
	// into a reusable scratch buffer and scored in parallel shards instead
	// of one streaming Score call per row. Selection stays deterministic
	// (first-seen argmax). Values <= 1 keep the streaming path.
	Workers int
}

// FMeasureGauge returns the registry gauge harnesses set after each
// accuracy evaluation; it keeps the metric name in one place.
func FMeasureGauge(reg *obs.Registry) *obs.Gauge { return reg.Gauge("ide_fmeasure") }

// IterationInfo describes one completed exploration iteration.
type IterationInfo struct {
	// Iteration counts selection iterations, starting at 1.
	Iteration int
	// LabelsGiven is the cumulative number of solicited labels.
	LabelsGiven int
	// SelectedID is the tuple chosen for labeling.
	SelectedID uint32
	// Label is the oracle's answer.
	Label oracle.Label
	// Score is the strategy score of the selected tuple.
	Score float64
	// PoolSize is the number of candidates scanned.
	PoolSize int
	// ResponseTime is the user-perceived latency of the iteration:
	// provider preparation + candidate scan + (amortized) retraining.
	ResponseTime time.Duration
	// Retrained reports whether the model was refitted this iteration.
	Retrained bool
	// Degraded reports that the provider completed this iteration in a
	// reduced mode — a sharded UEI index skipped one or more unavailable
	// shards — so the selection may be less informed than usual.
	Degraded bool
	// Model is the current predictive model (read-only; evaluate, don't
	// mutate).
	Model learn.Classifier
}

// Result summarizes a finished session.
type Result struct {
	// LabelsUsed is the total user effort including initial examples.
	LabelsUsed int
	// Iterations is the number of selection iterations run.
	Iterations int
	// Positive is the final retrieved result set (Algorithm 1 line 13).
	Positive []uint32
	// Model is the final trained model.
	Model learn.Classifier
}

// Session runs Algorithm 1 (equivalently Algorithm 2 lines 12-27) over a
// Provider.
type Session struct {
	cfg      Config
	provider Provider
	labeler  Labeler
	rng      *rand.Rand

	// Engine instruments (nil without Config.Registry; nil-safe no-ops).
	hIteration *obs.Histogram
	hSelect    *obs.Histogram
	hLabel     *obs.Histogram
	hRetrain   *obs.Histogram
	mIters     *obs.Counter
	mLabels    *obs.Counter
	mRetrains  *obs.Counter

	labeledIDs []uint32
	labeledX   [][]float64
	labeledY   []int
	model      learn.Classifier
	// Batch-selection scratch, reused across iterations to avoid
	// re-allocating the materialized pool every selection.
	batchIDs    []uint32
	batchRows   [][]float64
	batchScores []float64
	// resumed marks sessions restored from a Snapshot; Run then reports
	// the pre-labeled tuples to the provider and skips acquisition when
	// both classes are already present.
	resumed bool

	// Step-machine state. The loop is a state machine so it can be driven
	// step-wise (Propose / Resolve / Feed / Finish) — e.g. over HTTP, where
	// the label arrives in a later request — as well as synchronously by
	// Run, which is implemented on top of the same transitions.
	phase             sessionPhase
	iteration         int
	sinceRetrain      int
	bootstrapAttempts int
	pending           *Proposal
	iterStart         time.Time
}

// sessionPhase names the step machine's states.
type sessionPhase int

const (
	// phaseNew: provider not prepared yet; the first Propose runs
	// preparation, snapshot replay, and positive seeding.
	phaseNew sessionPhase = iota
	// phaseBootstrap: initial example acquisition (Algorithm 2 line 13) —
	// Propose draws uniform random candidates until L holds both classes.
	phaseBootstrap
	// phaseReady: model fitted; Propose runs a selection iteration.
	phaseReady
	// phaseDone: budget spent or pool exhausted; only Finish remains.
	phaseDone
)

// Proposal is one label solicitation: the tuple the engine wants the user
// to judge next. Selection proposals carry the strategy score and pool
// size; bootstrap proposals (initial example acquisition) are uniform
// random draws made before the first model exists.
type Proposal struct {
	// ID is the solicited tuple.
	ID uint32
	// Row is the tuple's feature vector (owned by the caller).
	Row []float64
	// Score is the strategy score (selection proposals only).
	Score float64
	// Pool is the number of candidates scanned (selection proposals only).
	Pool int
	// Bootstrap marks initial-acquisition draws.
	Bootstrap bool
	// Iteration is the 1-based selection iteration (0 for bootstrap).
	Iteration int
	// Degraded marks proposals produced in a reduced provider mode (see
	// IterationInfo.Degraded).
	Degraded bool
}

// NewSession validates the configuration and builds a session.
func NewSession(cfg Config, provider Provider, labeler Labeler) (*Session, error) {
	if provider == nil {
		return nil, fmt.Errorf("ide: nil provider")
	}
	if labeler == nil {
		return nil, fmt.Errorf("ide: nil labeler")
	}
	if cfg.SeedCount == 0 {
		cfg.SeedCount = 1
	}
	if cfg.SeedCount < 0 {
		return nil, fmt.Errorf("ide: SeedCount %d must be positive", cfg.SeedCount)
	}
	if cfg.SeedWithPositive {
		if _, ok := labeler.(PositiveSeeder); !ok {
			return nil, fmt.Errorf("ide: SeedWithPositive requires a labeler implementing PositiveSeeder, got %T", labeler)
		}
		if cfg.SeedCount > 1 {
			if _, ok := labeler.(MultiPositiveSeeder); !ok {
				return nil, fmt.Errorf("ide: SeedCount > 1 requires a labeler implementing MultiPositiveSeeder, got %T", labeler)
			}
		}
	}
	if cfg.MaxLabels <= 0 {
		return nil, fmt.Errorf("ide: MaxLabels %d must be positive", cfg.MaxLabels)
	}
	if cfg.EstimatorFactory == nil {
		return nil, fmt.Errorf("ide: nil estimator factory")
	}
	if cfg.Strategy == nil {
		return nil, fmt.Errorf("ide: nil strategy")
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 1
	}
	if cfg.BatchSize < 0 {
		return nil, fmt.Errorf("ide: BatchSize %d must be positive", cfg.BatchSize)
	}
	reg := cfg.Registry
	return &Session{
		cfg:        cfg,
		provider:   provider,
		labeler:    labeler,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		hIteration: reg.Histogram(obs.IterationHistName, nil),
		hSelect:    reg.Histogram(obs.PhaseHistName(obs.PhaseSelect), nil),
		hLabel:     reg.Histogram(obs.PhaseHistName(obs.PhaseLabel), nil),
		hRetrain:   reg.Histogram(obs.PhaseHistName(obs.PhaseRetrain), nil),
		mIters:     reg.Counter("ide_iterations_total"),
		mLabels:    reg.Counter("ide_labels_total"),
		mRetrains:  reg.Counter("ide_retrains_total"),
	}, nil
}

// Run executes the full exploration and returns the retrieved results.
// ctx bounds the whole session: it is checked at every iteration boundary
// and threaded into every provider call, so cancellation aborts within one
// iteration (a region load in flight stops at its next chunk boundary) and
// Run returns an error satisfying errors.Is(err, ctx.Err()).
//
// Run is the synchronous driver of the step machine: it alternates Propose
// and Resolve until Propose reports ErrExplorationDone, then Finishes.
// Step-wise callers (the serving layer) interleave the same calls with
// arbitrary think time in between and get identical selections.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	for {
		if _, err := s.Propose(ctx); err != nil {
			if errors.Is(err, ErrExplorationDone) {
				break
			}
			return nil, err
		}
		if _, err := s.Resolve(ctx); err != nil {
			return nil, err
		}
	}
	return s.Finish(ctx)
}

// Propose advances the session to its next label solicitation and returns
// it. The first call prepares the provider (and replays a resumed
// snapshot); while L lacks a class it returns uniform random bootstrap
// proposals; afterwards it runs one selection iteration (Algorithm 2 lines
// 15-21) per call. Calling Propose again without resolving returns the
// same outstanding proposal. When the label budget is spent or the pool is
// exhausted it returns ErrExplorationDone.
func (s *Session) Propose(ctx context.Context) (*Proposal, error) {
	if s.pending != nil {
		return s.pending, nil
	}
	if s.phase == phaseNew {
		if err := s.start(ctx); err != nil {
			return nil, err
		}
	}
	if s.phase == phaseBootstrap {
		return s.proposeBootstrap(ctx)
	}
	if s.phase == phaseDone {
		return nil, ErrExplorationDone
	}
	return s.proposeSelect(ctx)
}

// start runs once, lazily, on the first Propose: provider preparation,
// snapshot replay, and — when the labeled set lacks a class — positive
// seeding. It leaves the session in phaseBootstrap or phaseReady. On a
// traced context the whole initialization is one "prepare" span.
func (s *Session) start(ctx context.Context) error {
	pctx, span := obs.StartSpan(ctx, obs.PhasePrepare)
	err := s.startInner(pctx)
	if err != nil {
		span.SetOutcome("error")
	}
	span.End(nil)
	return err
}

func (s *Session) startInner(ctx context.Context) error {
	if err := s.provider.Prepare(ctx); err != nil {
		return fmt.Errorf("ide: provider prepare: %w", err)
	}
	if s.resumed {
		for _, id := range s.labeledIDs {
			s.provider.OnLabeled(id)
		}
	}
	if hasPos, hasNeg := s.classesPresent(); !hasPos || !hasNeg {
		if s.cfg.SeedWithPositive {
			if err := s.seedPositives(ctx); err != nil {
				return err
			}
		}
		if hasPos, hasNeg := s.classesPresent(); !hasPos || !hasNeg {
			s.phase = phaseBootstrap
			return nil
		}
	}
	return s.finishBootstrap()
}

// finishBootstrap transitions from acquisition to the interactive loop:
// the first model fit and the AfterPrepare boundary hook.
func (s *Session) finishBootstrap() error {
	if err := s.refit(); err != nil {
		return err
	}
	if s.cfg.AfterPrepare != nil {
		s.cfg.AfterPrepare()
	}
	s.phase = phaseReady
	return nil
}

// proposeBootstrap draws one uniform random candidate for the initial
// example acquisition (Algorithm 2 line 13: on sparse-target workloads a
// random tuple is negative with overwhelming probability).
func (s *Session) proposeBootstrap(ctx context.Context) (*Proposal, error) {
	if s.labeler.Count() >= s.cfg.MaxLabels {
		hasPos, hasNeg := s.classesPresent()
		return nil, fmt.Errorf("ide: label budget exhausted before both classes were observed (pos=%v neg=%v)", hasPos, hasNeg)
	}
	if s.bootstrapAttempts > 100*s.cfg.MaxLabels {
		return nil, fmt.Errorf("ide: initial example acquisition stalled after %d attempts", s.bootstrapAttempts)
	}
	s.bootstrapAttempts++
	bctx, span := obs.StartSpan(ctx, obs.PhaseBootstrap)
	id, row, ok, err := s.randomCandidate(bctx)
	if err != nil {
		span.SetOutcome("error")
		span.End(nil)
		return nil, err
	}
	span.End(nil)
	if !ok {
		return nil, fmt.Errorf("ide: initial acquisition: %w", ErrNoCandidates)
	}
	s.pending = &Proposal{ID: id, Row: row, Bootstrap: true}
	return s.pending, nil
}

// proposeSelect runs the pre-label half of one selection iteration:
// provider preparation (region swap), candidate scoring, and the argmax
// choice. The iteration clock starts here and stops in Resolve, so in
// Run-mode the user's labeling time is part of the response time exactly
// as before the step refactor.
func (s *Session) proposeSelect(ctx context.Context) (*Proposal, error) {
	if s.labeler.Count() >= s.cfg.MaxLabels {
		s.phase = phaseDone
		return nil, ErrExplorationDone
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("ide: session canceled after %d iterations: %w", s.iteration, err)
	}
	s.iteration++
	s.cfg.Tracer.BeginIteration(s.iteration)
	s.iterStart = time.Now()
	// On a traced context the propose half of the iteration — provider
	// preparation (score/load/swap) and candidate selection — is one
	// "iteration" span under the step; the resolve half (label, retrain)
	// belongs to the step that delivers the label.
	ictx, ispan := obs.StartSpan(ctx, "iteration")
	if err := s.provider.BeforeSelect(ictx, s.model); err != nil {
		ispan.SetOutcome("error")
		ispan.End(map[string]float64{"iter": float64(s.iteration)})
		return nil, fmt.Errorf("ide: iteration %d: %w", s.iteration, err)
	}
	sctx, sel := s.cfg.Tracer.Phase(ictx, obs.PhaseSelect)
	id, row, score, pool, err := s.selectCandidate(sctx)
	if err != nil {
		sel.End(nil)
		ispan.SetOutcome("error")
		ispan.End(map[string]float64{"iter": float64(s.iteration)})
		return nil, fmt.Errorf("ide: iteration %d: %w", s.iteration, err)
	}
	s.hSelect.ObserveDuration(sel.End(map[string]float64{"pool": float64(pool)}))
	if pool == 0 {
		s.phase = phaseDone // unlabeled pool exhausted
		ispan.End(map[string]float64{"iter": float64(s.iteration), "pool": 0})
		return nil, ErrExplorationDone
	}
	if s.providerDegraded() {
		ispan.SetOutcome("degraded")
	}
	ispan.End(map[string]float64{"iter": float64(s.iteration), "pool": float64(pool)})
	s.pending = &Proposal{ID: id, Row: row, Score: score, Pool: pool, Iteration: s.iteration, Degraded: s.providerDegraded()}
	return s.pending, nil
}

// providerDegraded asks the provider (when it can tell) whether its last
// per-iteration preparation ran in a reduced mode, e.g. a sharded UEI
// index that skipped unavailable shards.
func (s *Session) providerDegraded() bool {
	if d, ok := s.provider.(interface{ LastStepDegraded() bool }); ok {
		return d.LastStepDegraded()
	}
	return false
}

// Resolve answers the outstanding proposal by asking the session's own
// labeler (the oracle simulation, or a human at a terminal) and applies
// the label. For selection proposals it completes the iteration — batch
// retraining, metrics, the OnIteration callback — and returns its
// IterationInfo; bootstrap resolutions return nil info.
func (s *Session) Resolve(ctx context.Context) (*IterationInfo, error) {
	p := s.pending
	if p == nil {
		return nil, fmt.Errorf("ide: no outstanding proposal to resolve")
	}
	if p.Bootstrap {
		s.pending = nil
		label := s.labeler.Label(p.ID, p.Row)
		s.addLabel(p.ID, p.Row, label)
		s.provider.OnLabeled(p.ID)
		if hasPos, hasNeg := s.classesPresent(); hasPos && hasNeg {
			if err := s.finishBootstrap(); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	s.pending = nil
	_, lab := s.cfg.Tracer.Phase(ctx, obs.PhaseLabel)
	label := s.labeler.Label(p.ID, p.Row)
	s.hLabel.ObserveDuration(lab.End(map[string]float64{"id": float64(p.ID)}))
	return s.completeIteration(ctx, p, label)
}

// Feed answers the outstanding proposal with an externally supplied label
// (an HTTP client, a UI) instead of the session's labeler asking for it.
// It requires the session to have been built with an *ExternalLabeler so
// label accounting stays in one place.
func (s *Session) Feed(ctx context.Context, label oracle.Label) (*IterationInfo, error) {
	ext, ok := s.labeler.(*ExternalLabeler)
	if !ok {
		return nil, fmt.Errorf("ide: Feed requires an *ExternalLabeler, session has %T", s.labeler)
	}
	if s.pending == nil {
		return nil, fmt.Errorf("ide: no outstanding proposal to feed")
	}
	ext.stage(label)
	return s.Resolve(ctx)
}

// Pending returns the outstanding proposal, or nil.
func (s *Session) Pending() *Proposal { return s.pending }

// Iterations returns the number of selection iterations started so far.
func (s *Session) Iterations() int { return s.iteration }

// completeIteration applies a selection label and runs the iteration's
// tail: batch retraining, latency accounting, tracing, and the
// OnIteration callback.
func (s *Session) completeIteration(ctx context.Context, p *Proposal, label oracle.Label) (*IterationInfo, error) {
	s.addLabel(p.ID, p.Row, label)
	s.provider.OnLabeled(p.ID)
	s.mLabels.Inc()

	retrained := false
	s.sinceRetrain++
	if s.sinceRetrain >= s.cfg.BatchSize {
		_, ret := s.cfg.Tracer.Phase(ctx, obs.PhaseRetrain)
		if err := s.refit(); err != nil {
			ret.End(nil)
			return nil, fmt.Errorf("ide: iteration %d retrain: %w", p.Iteration, err)
		}
		s.hRetrain.ObserveDuration(ret.End(map[string]float64{
			"labeled": float64(len(s.labeledY)),
		}))
		s.mRetrains.Inc()
		s.sinceRetrain = 0
		retrained = true
	}
	elapsed := time.Since(s.iterStart)
	s.hIteration.ObserveDuration(elapsed)
	s.mIters.Inc()
	s.cfg.Tracer.EndIteration(map[string]float64{
		"labels":    float64(s.labeler.Count()),
		"pool":      float64(p.Pool),
		"retrained": boolAttr(retrained),
	})
	info := IterationInfo{
		Iteration:    p.Iteration,
		LabelsGiven:  s.labeler.Count(),
		SelectedID:   p.ID,
		Label:        label,
		Score:        p.Score,
		PoolSize:     p.Pool,
		ResponseTime: elapsed,
		Retrained:    retrained,
		Degraded:     p.Degraded,
		Model:        s.model,
	}
	if s.cfg.OnIteration != nil {
		s.cfg.OnIteration(info)
	}
	return &info, nil
}

// Finish runs result retrieval (Algorithm 1 line 13) with the current
// model and summarizes the session.
func (s *Session) Finish(ctx context.Context) (*Result, error) {
	if s.pending != nil {
		return nil, fmt.Errorf("ide: proposal for tuple %d is outstanding; resolve it before Finish", s.pending.ID)
	}
	if s.model == nil {
		return nil, fmt.Errorf("ide: finish before the first model fit: %w", learn.ErrNotFitted)
	}
	if s.cfg.BeforeRetrieve != nil {
		s.cfg.BeforeRetrieve()
	}
	rctx, span := obs.StartSpan(ctx, obs.PhaseRetrieve)
	positive, err := s.provider.Retrieve(rctx, s.model)
	if err != nil {
		span.SetOutcome("error")
		span.End(nil)
		return nil, fmt.Errorf("ide: result retrieval: %w", err)
	}
	span.End(map[string]float64{"positive": float64(len(positive))})
	return &Result{
		LabelsUsed: s.labeler.Count(),
		Iterations: s.iteration,
		Positive:   positive,
		Model:      s.model,
	}, nil
}

// RunV1 runs the session without cancellation.
//
// Deprecated: use Run with a context.
func (s *Session) RunV1() (*Result, error) { return s.Run(context.Background()) }

// Model returns the current predictive model (nil before the first fit).
func (s *Session) Model() learn.Classifier { return s.model }

// LabeledCount returns the size of L.
func (s *Session) LabeledCount() int { return len(s.labeledY) }

// seedPositives bootstraps L with known-relevant examples supplied by the
// labeler (Config.SeedWithPositive): the standard IDE assumption that the
// user shows an instance of what they seek.
func (s *Session) seedPositives(ctx context.Context) error {
	if s.cfg.SeedCount > 1 {
		seeder := s.labeler.(MultiPositiveSeeder)
		ids, rows := seeder.SeedPositives(s.cfg.SeedCount)
		if len(ids) == 0 {
			return fmt.Errorf("ide: no relevant tuples exist to seed the exploration")
		}
		for i, id := range ids {
			label := s.labeler.Label(id, rows[i])
			s.addLabel(id, rows[i], label)
			s.provider.OnLabeled(id)
		}
		return nil
	}
	id, row, ok := s.findSeedPositive(ctx)
	if !ok {
		return fmt.Errorf("ide: no relevant tuple exists to seed the exploration")
	}
	label := s.labeler.Label(id, row)
	s.addLabel(id, row, label)
	s.provider.OnLabeled(id)
	return nil
}

// findSeedPositive locates one relevant example: preferably a relevant
// candidate already in the pool, otherwise any relevant tuple from the
// oracle's ground truth (the "user brings an example" case).
func (s *Session) findSeedPositive(ctx context.Context) (uint32, []float64, bool) {
	var id uint32
	var row []float64
	found := false
	seeder := s.labeler.(PositiveSeeder)
	s.provider.Candidates(ctx, func(cid uint32, crow []float64) bool {
		if seeder.IsRelevant(cid) {
			id = cid
			row = append([]float64(nil), crow...)
			found = true
			return false
		}
		return true
	})
	if found {
		return id, row, true
	}
	return seeder.SeedPositive()
}

// randomCandidate draws one uniform candidate with a size-1 reservoir over
// the stream.
func (s *Session) randomCandidate(ctx context.Context) (uint32, []float64, bool, error) {
	var id uint32
	var row []float64
	n := 0
	err := s.provider.Candidates(ctx, func(cid uint32, crow []float64) bool {
		n++
		if s.rng.Intn(n) == 0 {
			id = cid
			row = append(row[:0], crow...)
		}
		return true
	})
	if err != nil {
		return 0, nil, false, err
	}
	if n == 0 {
		return 0, nil, false, nil
	}
	return id, append([]float64(nil), row...), true, nil
}

// selectCandidate returns the argmax-scoring candidate (Eq. 2), copying
// its row. Ties keep the first candidate seen, which combined with sorted
// candidate streams makes selection deterministic. With Workers > 1 and a
// BatchScorer strategy it materializes the pool and scores it in parallel
// shards; the serial argmax over the score vector uses the same strict
// comparison, so both paths select the same candidate.
func (s *Session) selectCandidate(ctx context.Context) (uint32, []float64, float64, int, error) {
	if bs, ok := s.cfg.Strategy.(al.BatchScorer); ok && s.cfg.Workers > 1 {
		return s.selectCandidateBatch(ctx, bs)
	}
	var bestID uint32
	var bestRow []float64
	bestScore := math.Inf(-1)
	pool := 0
	var scoreErr error
	err := s.provider.Candidates(ctx, func(id uint32, row []float64) bool {
		score, err := s.cfg.Strategy.Score(s.model, row)
		if err != nil {
			scoreErr = err
			return false
		}
		pool++
		if score > bestScore {
			bestScore = score
			bestID = id
			bestRow = append(bestRow[:0], row...)
		}
		return true
	})
	if err != nil {
		return 0, nil, 0, 0, err
	}
	if scoreErr != nil {
		return 0, nil, 0, 0, scoreErr
	}
	if pool == 0 {
		return 0, nil, 0, 0, nil
	}
	return bestID, append([]float64(nil), bestRow...), bestScore, pool, nil
}

// selectCandidateBatch materializes the candidate pool into reusable
// scratch buffers and scores it with one sharded BatchScore call. The
// candidate stream's rows may be reused by the provider, so each row is
// copied into scratch; buffers persist across iterations, making the
// steady-state allocation cost near zero.
func (s *Session) selectCandidateBatch(ctx context.Context, strat al.BatchScorer) (uint32, []float64, float64, int, error) {
	n := 0
	err := s.provider.Candidates(ctx, func(id uint32, row []float64) bool {
		if n < len(s.batchRows) {
			s.batchIDs[n] = id
			s.batchRows[n] = append(s.batchRows[n][:0], row...)
		} else {
			s.batchIDs = append(s.batchIDs, id)
			s.batchRows = append(s.batchRows, append([]float64(nil), row...))
		}
		n++
		return true
	})
	if err != nil {
		return 0, nil, 0, 0, err
	}
	if n == 0 {
		return 0, nil, 0, 0, nil
	}
	if cap(s.batchScores) < n {
		s.batchScores = make([]float64, n)
	}
	scores := s.batchScores[:n]
	if err := strat.BatchScore(ctx, s.model, s.batchRows[:n], scores, s.cfg.Workers); err != nil {
		return 0, nil, 0, 0, err
	}
	best := 0
	for i := 1; i < n; i++ {
		if scores[i] > scores[best] {
			best = i
		}
	}
	return s.batchIDs[best], append([]float64(nil), s.batchRows[best]...), scores[best], n, nil
}

// addLabel appends to L.
func (s *Session) addLabel(id uint32, row []float64, label oracle.Label) {
	s.labeledIDs = append(s.labeledIDs, id)
	s.labeledX = append(s.labeledX, row)
	if label == oracle.Positive {
		s.labeledY = append(s.labeledY, learn.ClassPositive)
	} else {
		s.labeledY = append(s.labeledY, learn.ClassNegative)
	}
}

// refit retrains the model on L and notifies the provider and strategy.
func (s *Session) refit() error {
	model := s.cfg.EstimatorFactory()
	if err := model.Fit(s.labeledX, s.labeledY); err != nil {
		return err
	}
	s.model = model
	s.provider.ModelUpdated()
	if aware, ok := s.cfg.Strategy.(al.LabeledAware); ok {
		if err := aware.SetLabeled(s.labeledX, s.labeledY); err != nil {
			return err
		}
	}
	return nil
}

// boolAttr encodes a flag as a trace attribute.
func boolAttr(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (s *Session) classesPresent() (hasPos, hasNeg bool) {
	for _, y := range s.labeledY {
		if y == learn.ClassPositive {
			hasPos = true
		} else {
			hasNeg = true
		}
	}
	return hasPos, hasNeg
}
