package ide

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/oracle"
)

// liveFixture is a fixture whose oracle and estimator are derived from a
// prefix of a larger dataset: the stores under test hold the prefix, and
// the remaining rows are the appends that land during exploration.
type liveFixture struct {
	prefix *dataset.Dataset
	orc    *oracle.Oracle
}

func newLiveFixture(t *testing.T, total, prefixLen int) *liveFixture {
	t.Helper()
	full, err := dataset.GenerateSky(dataset.SkyConfig{N: total, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	prefix := dataset.New(full.Schema(), prefixLen)
	for i := 0; i < prefixLen; i++ {
		if _, err := prefix.Append(full.Row(dataset.RowID(i))); err != nil {
			t.Fatal(err)
		}
	}
	region, err := oracle.FindRegion(prefix, 0.02, 0.5, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	orc, err := oracle.New(prefix, region)
	if err != nil {
		t.Fatal(err)
	}
	return &liveFixture{prefix: prefix, orc: orc}
}

func (f *liveFixture) factory(t *testing.T) Config {
	t.Helper()
	bounds, err := f.prefix.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	widths := bounds.Widths()
	return Config{
		MaxLabels:        25,
		EstimatorFactory: func() learn.Classifier { return learn.NewDWKNN(5, widths) },
		Strategy:         al.LeastConfidence{},
		Seed:             7,
		SeedWithPositive: true,
	}
}

// openPrefixIndex builds and opens a store over the fixture's prefix.
func (f *liveFixture) openPrefixIndex(t *testing.T, shards int, live, follow bool) *core.Index {
	t.Helper()
	dir := t.TempDir()
	if err := core.Build(dir, f.prefix, core.BuildOptions{TargetChunkBytes: 2048, Shards: shards, LiveIngest: live}); err != nil {
		t.Fatal(err)
	}
	opts := core.Options{
		MemoryBudgetBytes: 1 << 20, SampleSize: 200, Seed: 3, Workers: 2,
		FollowLive: follow,
	}
	if shards > 1 {
		opts.Shards = shards
	}
	idx, err := core.Open(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	return idx
}

// runLiveSession runs one full exploration over idx and returns its trace.
// When appender is true, a goroutine hammers the live write path — appends
// of in-bounds rows plus explicit flushes — for the whole run, so every
// iteration races durable ingest and epoch commits.
func (f *liveFixture) runLiveSession(t *testing.T, idx *core.Index, appender bool) sessionTrace {
	t.Helper()
	var (
		stop = make(chan struct{})
		wg   sync.WaitGroup
	)
	if appender {
		db := idx.Live()
		if db == nil {
			t.Fatal("appender requested on a non-live index")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Re-append existing rows: values stay inside the pinned
				// grid bounds, so every append is accepted.
				row := f.prefix.CopyRow(dataset.RowID((i * 37) % f.prefix.Len()))
				if _, err := db.Append([][]float64{row}); err != nil {
					t.Errorf("concurrent append: %v", err)
					return
				}
				if i%8 == 7 {
					if err := db.Flush(ctx); err != nil {
						t.Errorf("concurrent flush: %v", err)
						return
					}
				}
			}
		}()
	}
	p, err := NewUEIProvider(idx)
	if err != nil {
		t.Fatal(err)
	}
	var tr sessionTrace
	cfg := f.factory(t)
	cfg.OnIteration = func(it IterationInfo) {
		tr.picks = append(tr.picks, it.SelectedID)
		tr.degraded = append(tr.degraded, it.Degraded)
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	tr.positive = res.Positive
	tr.labels = res.LabelsUsed
	return tr
}

// TestLiveSessionSnapshotIsolationParity is the acceptance gate for the
// streaming write path: a session over a live store pinned at epoch E must
// make byte-identical decisions — same labeled sequence, same retrieved
// result set — to a session over an immutable static index built from
// exactly E's rows, even while concurrent appends and flushes land
// throughout the run. Flat and sharded (S=2), under -race.
func TestLiveSessionSnapshotIsolationParity(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("S=%d", shards), func(t *testing.T) {
			f := newLiveFixture(t, 3000, 2000)
			static := f.runLiveSession(t, f.openPrefixIndex(t, shards, false, false), false)
			if len(static.picks) == 0 || len(static.positive) == 0 {
				t.Fatalf("static session degenerate: %d picks, %d positives", len(static.picks), len(static.positive))
			}

			// The oracle counts labels across its lifetime; rebuild the
			// fixture so the live run starts from the same state.
			f = newLiveFixture(t, 3000, 2000)
			idx := f.openPrefixIndex(t, shards, true, false)
			epoch := idx.LiveEpoch()
			live := f.runLiveSession(t, idx, true)

			if idx.LiveEpoch() != epoch {
				t.Errorf("pinned epoch moved during the session: %d -> %d", epoch, idx.LiveEpoch())
			}
			if idx.RowCount() != f.prefix.Len() {
				t.Errorf("pinned row count moved: %d, want %d", idx.RowCount(), f.prefix.Len())
			}
			if live.labels != static.labels {
				t.Errorf("labels used: live %d, static %d", live.labels, static.labels)
			}
			if len(live.picks) != len(static.picks) {
				t.Fatalf("live ran %d iterations, static %d", len(live.picks), len(static.picks))
			}
			for i := range live.picks {
				if live.picks[i] != static.picks[i] {
					t.Fatalf("iteration %d: live labeled row %d, static labeled %d", i, live.picks[i], static.picks[i])
				}
			}
			if len(live.positive) != len(static.positive) {
				t.Fatalf("live retrieved %d rows, static %d", len(live.positive), len(static.positive))
			}
			for i := range live.positive {
				if live.positive[i] != static.positive[i] {
					t.Fatalf("retrieved[%d]: live %d, static %d", i, live.positive[i], static.positive[i])
				}
			}
		})
	}
}

// TestLiveSessionFollowLive smokes the opt-in epoch-following mode: with
// FollowLive the provider advances the snapshot at iteration boundaries,
// so by the end of a run under concurrent ingest the session has moved
// past its opening epoch and completed without error.
func TestLiveSessionFollowLive(t *testing.T) {
	f := newLiveFixture(t, 3000, 2000)
	idx := f.openPrefixIndex(t, 1, true, true)
	if !idx.FollowsLive() {
		t.Fatal("FollowsLive = false on a FollowLive open")
	}
	epoch := idx.LiveEpoch()
	tr := f.runLiveSession(t, idx, true)
	if len(tr.picks) == 0 {
		t.Fatal("follow-live session made no iterations")
	}
	if idx.LiveEpoch() <= epoch {
		t.Errorf("follow-live session never advanced: epoch still %d", idx.LiveEpoch())
	}
	if idx.RowCount() <= f.prefix.Len() {
		t.Errorf("follow-live RowCount = %d, want > %d", idx.RowCount(), f.prefix.Len())
	}
}
