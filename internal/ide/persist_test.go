package ide

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/oracle"
)

func TestSnapshotRoundTrip(t *testing.T) {
	f := newFixture(t, 1200, 0.02)
	p := f.dbmsProvider(t, 8)
	cfg := Config{
		MaxLabels:        15,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             21,
		SeedWithPositive: true,
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := sess.Snapshot()
	if len(snap.IDs) != 15 {
		t.Fatalf("snapshot holds %d labels", len(snap.IDs))
	}

	var buf bytes.Buffer
	if err := snap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.IDs) != len(snap.IDs) {
		t.Fatalf("round trip lost labels: %d vs %d", len(back.IDs), len(snap.IDs))
	}
	for i := range snap.IDs {
		if back.IDs[i] != snap.IDs[i] || back.Y[i] != snap.Y[i] {
			t.Fatalf("entry %d differs", i)
		}
		for j := range snap.X[i] {
			if back.X[i][j] != snap.X[i][j] {
				t.Fatalf("row %d value %d differs", i, j)
			}
		}
	}
}

func TestSnapshotValidation(t *testing.T) {
	bad := []Snapshot{
		{},
		{FormatVersion: snapshotFormatVersion},
		{FormatVersion: snapshotFormatVersion, IDs: []uint32{1}, X: [][]float64{{1}}, Y: []int{5}},
		{FormatVersion: snapshotFormatVersion, IDs: []uint32{1, 2}, X: [][]float64{{1}}, Y: []int{0, 1}},
		{FormatVersion: snapshotFormatVersion, IDs: []uint32{1, 2}, X: [][]float64{{1}, {1, 2}}, Y: []int{0, 1}},
		{FormatVersion: 99, IDs: []uint32{1}, X: [][]float64{{1}}, Y: []int{0}},
	}
	for i, snap := range bad {
		var buf bytes.Buffer
		if err := snap.Save(&buf); err == nil {
			t.Errorf("case %d: Save accepted invalid snapshot", i)
		}
	}
	if _, err := ReadSnapshot(strings.NewReader("{not json")); err == nil {
		t.Error("garbage snapshot should fail")
	}
}

func TestResumeContinuesExploration(t *testing.T) {
	f := newFixture(t, 2500, 0.01)
	// Phase 1: 20 labels over the DBMS provider.
	p1 := f.dbmsProvider(t, 8)
	cfg := Config{
		MaxLabels:        20,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             31,
		SeedWithPositive: true,
	}
	sess1, err := NewSession(cfg, p1, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess1.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := sess1.Snapshot()

	// Phase 2: resume onto a FRESH provider (fresh oracle counter too) and
	// keep exploring; the resumed session must not re-run initial
	// acquisition and must not re-select already-labeled tuples.
	orc2, err := oracle.New(f.ds, f.region)
	if err != nil {
		t.Fatal(err)
	}
	p2 := f.dbmsProvider(t, 8)
	var picks []uint32
	cfg2 := cfg
	cfg2.MaxLabels = 10
	cfg2.SeedWithPositive = false
	cfg2.OnIteration = func(it IterationInfo) { picks = append(picks, it.SelectedID) }
	sess2, err := NewSessionFromSnapshot(cfg2, p2, OracleLabeler{O: orc2}, snap)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelsUsed != 10 {
		t.Errorf("resumed session used %d labels, want 10", res.LabelsUsed)
	}
	already := make(map[uint32]bool, len(snap.IDs))
	for _, id := range snap.IDs {
		already[id] = true
	}
	for _, id := range picks {
		if already[id] {
			t.Fatalf("resumed session re-selected labeled tuple %d", id)
		}
	}
	if sess2.LabeledCount() != len(snap.IDs)+10 {
		t.Errorf("resumed L holds %d labels, want %d", sess2.LabeledCount(), len(snap.IDs)+10)
	}
}

func TestResumeRejectsBadSnapshot(t *testing.T) {
	f := newFixture(t, 300, 0.05)
	p := f.dbmsProvider(t, 4)
	cfg := Config{
		MaxLabels:        5,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
	}
	if _, err := NewSessionFromSnapshot(cfg, p, OracleLabeler{O: f.orc}, Snapshot{}); err == nil {
		t.Error("empty snapshot should fail")
	}
}

func TestMultiSeedBootstrap(t *testing.T) {
	// Two disjoint regions; SeedCount 2 must label one positive in each.
	ds := f2Dataset(t)
	a, err := oracle.NewRegion([]float64{100, 100, 100, 0, 100}, []float64{50, 50, 50, 50, 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := oracle.NewRegion([]float64{1900, 1900, 300, 80, 900}, []float64{100, 100, 50, 9, 90})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := oracle.NewMultiRegion(a, b)
	if err != nil {
		t.Fatal(err)
	}
	orc, err := oracle.NewMulti(ds, mr)
	if err != nil {
		t.Fatal(err)
	}
	if orc.RelevantCount() == 0 {
		t.Skip("generated data misses the fixed regions")
	}
	l := OracleLabeler{O: orc}
	ids, rows := l.SeedPositives(2)
	if len(ids) == 0 {
		t.Fatal("no seeds")
	}
	for i, id := range ids {
		if !l.IsRelevant(id) {
			t.Errorf("seed %d not relevant", id)
		}
		if len(rows[i]) != ds.Dims() {
			t.Errorf("seed row %d malformed", i)
		}
	}
	// If both regions hold data, seeds must come from distinct regions.
	if len(ids) == 2 {
		inA := a.Contains(rows[0]) || a.Contains(rows[1])
		inB := b.Contains(rows[0]) || b.Contains(rows[1])
		if !inA || !inB {
			t.Error("seeds not spread across regions")
		}
	}
}

func TestSeedCountValidation(t *testing.T) {
	f := newFixture(t, 300, 0.05)
	p := f.dbmsProvider(t, 4)
	cfg := Config{
		MaxLabels:        5,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		SeedWithPositive: true,
		SeedCount:        -1,
	}
	if _, err := NewSession(cfg, p, OracleLabeler{O: f.orc}); err == nil {
		t.Error("negative SeedCount should fail")
	}
	cfg.SeedCount = 2
	if _, err := NewSession(cfg, p, OracleLabeler{O: f.orc}); err != nil {
		t.Errorf("OracleLabeler supports multi-seed: %v", err)
	}
	plain := plainLabeler{o: f.orc}
	cfg.SeedWithPositive = false
	cfg.SeedCount = 2
	if _, err := NewSession(cfg, p, plain); err != nil {
		t.Errorf("SeedCount without SeedWithPositive is harmless: %v", err)
	}
}

// f2Dataset builds a moderate sky dataset for the multi-seed test.
func f2Dataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 20000, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}
