package ide

import (
	"context"
	"testing"
	"time"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/dbms"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/metrics"
	"github.com/uei-db/uei/internal/oracle"
)

// fixture bundles a small exploration environment.
type fixture struct {
	ds     *dataset.Dataset
	region oracle.Region
	orc    *oracle.Oracle
}

func newFixture(t *testing.T, n int, fraction float64) *fixture {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: n, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	region, err := oracle.FindRegion(ds, fraction, 0.5, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	orc, err := oracle.New(ds, region)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{ds: ds, region: region, orc: orc}
}

func (f *fixture) estimatorFactory(t *testing.T) func() learn.Classifier {
	t.Helper()
	bounds, err := f.ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	widths := bounds.Widths()
	return func() learn.Classifier { return learn.NewDWKNN(5, widths) }
}

func (f *fixture) ueiProvider(t *testing.T, sample int) *UEIProvider {
	t.Helper()
	dir := t.TempDir()
	if err := core.Build(dir, f.ds, core.BuildOptions{TargetChunkBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	idx, err := core.Open(context.Background(), dir, core.Options{MemoryBudgetBytes: 1 << 20, SampleSize: sample, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	p, err := NewUEIProvider(idx)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (f *fixture) dbmsProvider(t *testing.T, frames int) *DBMSProvider {
	t.Helper()
	tb, err := dbms.CreateTable(t.TempDir(), f.ds, frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tb.Close() })
	p, err := NewDBMSProvider(tb)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// evalF1 measures the model's F-measure against the oracle on every tuple.
func evalF1(t *testing.T, f *fixture, model learn.Classifier) float64 {
	t.Helper()
	var conf metrics.Confusion
	var evalErr error
	f.ds.Scan(func(id dataset.RowID, row []float64) bool {
		cls, err := learn.Predict(model, row)
		if err != nil {
			evalErr = err
			return false
		}
		conf.Observe(cls == learn.ClassPositive, f.orc.Relevant(id))
		return true
	})
	if evalErr != nil {
		t.Fatal(evalErr)
	}
	return conf.F1()
}

func TestNewSessionValidation(t *testing.T) {
	f := newFixture(t, 300, 0.02)
	p := f.dbmsProvider(t, 4)
	factory := f.estimatorFactory(t)
	good := Config{MaxLabels: 5, EstimatorFactory: factory, Strategy: al.LeastConfidence{}}
	if _, err := NewSession(good, nil, OracleLabeler{O: f.orc}); err == nil {
		t.Error("nil provider should fail")
	}
	if _, err := NewSession(good, p, nil); err == nil {
		t.Error("nil oracle should fail")
	}
	for _, bad := range []Config{
		{MaxLabels: 0, EstimatorFactory: factory, Strategy: al.LeastConfidence{}},
		{MaxLabels: 5, Strategy: al.LeastConfidence{}},
		{MaxLabels: 5, EstimatorFactory: factory},
		{MaxLabels: 5, EstimatorFactory: factory, Strategy: al.LeastConfidence{}, BatchSize: -1},
	} {
		if _, err := NewSession(bad, p, OracleLabeler{O: f.orc}); err == nil {
			t.Errorf("config %+v should fail", bad)
		}
	}
}

func TestDBMSSessionConverges(t *testing.T) {
	f := newFixture(t, 4000, 0.01)
	p := f.dbmsProvider(t, 8)
	var iterations []IterationInfo
	cfg := Config{
		MaxLabels:        60,
		BatchSize:        1,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             1,
		SeedWithPositive: true,
		OnIteration:      func(it IterationInfo) { iterations = append(iterations, it) },
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelsUsed != 60 {
		t.Errorf("LabelsUsed = %d", res.LabelsUsed)
	}
	if len(iterations) == 0 {
		t.Fatal("no iterations observed")
	}
	// Pool shrinks as labels accumulate.
	first, last := iterations[0], iterations[len(iterations)-1]
	if last.PoolSize >= first.PoolSize {
		t.Errorf("pool did not shrink: %d -> %d", first.PoolSize, last.PoolSize)
	}
	f1 := evalF1(t, f, res.Model)
	if f1 < 0.5 {
		t.Errorf("final F1 = %.3f; uncertainty sampling should reach 0.5 with 60 labels", f1)
	}
	// Retrieval must agree with the final model's own predictions.
	if len(res.Positive) == 0 {
		t.Error("empty retrieval")
	}
}

func TestUEISessionConverges(t *testing.T) {
	f := newFixture(t, 4000, 0.01)
	p := f.ueiProvider(t, 400)
	cfg := Config{
		MaxLabels:        60,
		BatchSize:        1,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             2,
		SeedWithPositive: true,
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	f1 := evalF1(t, f, res.Model)
	if f1 < 0.4 {
		t.Errorf("final F1 = %.3f; UEI session should reach 0.4 with 60 labels", f1)
	}
	st := p.Index().Stats()
	if st.RegionSwaps == 0 {
		t.Error("UEI session never loaded a region")
	}
}

func TestSessionDeterminism(t *testing.T) {
	run := func() []uint32 {
		f := newFixture(t, 1500, 0.02)
		p := f.dbmsProvider(t, 8)
		var picks []uint32
		cfg := Config{
			MaxLabels:        20,
			EstimatorFactory: f.estimatorFactory(t),
			Strategy:         al.LeastConfidence{},
			Seed:             7,
			SeedWithPositive: true,
			OnIteration:      func(it IterationInfo) { picks = append(picks, it.SelectedID) },
		}
		sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return picks
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSessionWithoutSeedPositive(t *testing.T) {
	// A generous region (20%) makes random acquisition find a positive
	// quickly; the session must work with no oracle bootstrap.
	f := newFixture(t, 1000, 0.2)
	p := f.dbmsProvider(t, 8)
	cfg := Config{
		MaxLabels:        40,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             3,
		SeedWithPositive: false,
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelsUsed == 0 || res.Model == nil {
		t.Error("session did not run")
	}
}

func TestSessionBatchRetraining(t *testing.T) {
	f := newFixture(t, 1500, 0.02)
	p := f.dbmsProvider(t, 8)
	retrains := 0
	iters := 0
	cfg := Config{
		MaxLabels:        22,
		BatchSize:        5,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             4,
		SeedWithPositive: true,
		OnIteration: func(it IterationInfo) {
			iters++
			if it.Retrained {
				retrains++
			}
		},
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if retrains == 0 {
		t.Fatal("model never retrained")
	}
	// With B=5, roughly one retrain per 5 iterations.
	if retrains > iters/4 {
		t.Errorf("retrained %d times in %d iterations with B=5", retrains, iters)
	}
}

func TestSessionPoolExhaustion(t *testing.T) {
	// More label budget than tuples: the loop must stop when the pool
	// drains rather than spin.
	f := newFixture(t, 60, 0.2)
	p := f.dbmsProvider(t, 4)
	cfg := Config{
		MaxLabels:        500,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             5,
		SeedWithPositive: true,
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelsUsed > 60 {
		t.Errorf("labeled %d tuples out of 60", res.LabelsUsed)
	}
}

func TestUEIResponseTimeBeatsFullScanPool(t *testing.T) {
	// Not a wall-clock benchmark — just the structural claim: the UEI
	// candidate pool per iteration is far smaller than the DBMS pool.
	f := newFixture(t, 5000, 0.01)
	uei := f.ueiProvider(t, 200)
	dbmsP := f.dbmsProvider(t, 8)
	var ueiPool, dbmsPool int
	for name, p := range map[string]Provider{"uei": uei, "dbms": dbmsP} {
		pool := 0
		cfg := Config{
			MaxLabels:        10,
			EstimatorFactory: f.estimatorFactory(t),
			Strategy:         al.LeastConfidence{},
			Seed:             6,
			SeedWithPositive: true,
			OnIteration:      func(it IterationInfo) { pool = it.PoolSize },
		}
		orc2, err := oracle.New(f.ds, f.region)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := NewSession(cfg, p, OracleLabeler{O: orc2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(context.Background()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "uei" {
			ueiPool = pool
		} else {
			dbmsPool = pool
		}
	}
	if ueiPool == 0 || dbmsPool == 0 {
		t.Fatal("pools not observed")
	}
	if ueiPool*4 > dbmsPool {
		t.Errorf("UEI pool %d not substantially smaller than DBMS pool %d", ueiPool, dbmsPool)
	}
}

func TestIterationResponseTimeRecorded(t *testing.T) {
	f := newFixture(t, 800, 0.02)
	p := f.dbmsProvider(t, 4)
	var times []time.Duration
	cfg := Config{
		MaxLabels:        8,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             8,
		SeedWithPositive: true,
		OnIteration:      func(it IterationInfo) { times = append(times, it.ResponseTime) },
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(times) == 0 {
		t.Fatal("no response times recorded")
	}
	for i, d := range times {
		if d <= 0 {
			t.Errorf("iteration %d response time %v", i, d)
		}
	}
}
