package ide

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/obs"
)

// TestTraceSpanSequence runs a real UEI exploration with tracing on and
// asserts the contract the -trace flag documents: every iteration emits
// score, load and retrain spans, in that order, each with positive
// duration, under an iteration root span that covers them.
func TestTraceSpanSequence(t *testing.T) {
	f := newFixture(t, 2000, 0.02)
	dir := t.TempDir()
	if err := core.Build(dir, f.ds, core.BuildOptions{TargetChunkBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf)
	reg := obs.NewRegistry()
	idx, err := core.Open(context.Background(), dir, core.Options{
		MemoryBudgetBytes: 1 << 20,
		SampleSize:        200,
		Seed:              3,
		Registry:          reg,
		Tracer:            tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	p, err := NewUEIProvider(idx)
	if err != nil {
		t.Fatal(err)
	}

	const maxLabels = 12
	cfg := Config{
		MaxLabels:        maxLabels,
		BatchSize:        1, // retrain every iteration
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             2,
		SeedWithPositive: true,
		Registry:         reg,
		Tracer:           tracer,
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Err(); err != nil {
		t.Fatal(err)
	}

	// Parse the JSONL stream back into per-iteration span sequences.
	type iterTrace struct {
		phases []obs.Event
		root   *obs.Event
	}
	iters := map[int]*iterTrace{}
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var e obs.Event
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		if e.Iter == 0 {
			continue // initialization activity before the loop starts
		}
		it := iters[e.Iter]
		if it == nil {
			it = &iterTrace{}
			iters[e.Iter] = it
		}
		switch e.Type {
		case "span":
			it.phases = append(it.phases, e)
		case "iteration":
			ev := e
			it.root = &ev
		default:
			t.Fatalf("unknown event type %q", e.Type)
		}
	}
	if len(iters) != res.Iterations {
		t.Fatalf("traced %d iterations, session ran %d", len(iters), res.Iterations)
	}

	for n := 1; n <= res.Iterations; n++ {
		it := iters[n]
		if it == nil {
			t.Fatalf("iteration %d missing from trace", n)
		}
		if it.root == nil {
			t.Fatalf("iteration %d has no root span", n)
		}
		if it.root.DurNS <= 0 {
			t.Errorf("iteration %d root duration %d", n, it.root.DurNS)
		}
		order := map[string]int64{}
		for _, sp := range it.phases {
			if sp.DurNS <= 0 {
				t.Errorf("iteration %d phase %s duration %d, want positive", n, sp.Phase, sp.DurNS)
			}
			if _, dup := order[sp.Phase]; !dup {
				order[sp.Phase] = sp.StartNS
			}
			if end := sp.StartNS + sp.DurNS; sp.StartNS < it.root.StartNS || end > it.root.StartNS+it.root.DurNS {
				t.Errorf("iteration %d phase %s [%d,%d] outside root [%d,%d]",
					n, sp.Phase, sp.StartNS, end, it.root.StartNS, it.root.StartNS+it.root.DurNS)
			}
		}
		for _, phase := range []string{obs.PhaseScore, obs.PhaseLoad, obs.PhaseRetrain} {
			if _, ok := order[phase]; !ok {
				t.Fatalf("iteration %d missing %s span (has %v)", n, phase, order)
			}
		}
		if !(order[obs.PhaseScore] < order[obs.PhaseLoad] && order[obs.PhaseLoad] < order[obs.PhaseRetrain]) {
			t.Errorf("iteration %d spans out of order: score@%d load@%d retrain@%d",
				n, order[obs.PhaseScore], order[obs.PhaseLoad], order[obs.PhaseRetrain])
		}
	}

	// The same run must have fed the registry's phase histograms.
	snap := reg.Snapshot()
	if got := snap.Histograms[obs.IterationHistName].Count; got != int64(res.Iterations) {
		t.Errorf("iteration histogram count = %d, want %d", got, res.Iterations)
	}
	for _, phase := range []string{obs.PhaseScore, obs.PhaseLoad, obs.PhaseRetrain, obs.PhaseSelect, obs.PhaseLabel} {
		h := snap.Histograms[obs.PhaseHistName(phase)]
		if h.Count == 0 {
			t.Errorf("phase histogram %s empty", phase)
		}
		if h.Sum <= 0 {
			t.Errorf("phase histogram %s sum = %g", phase, h.Sum)
		}
	}
	if snap.Counters["ide_iterations_total"] != int64(res.Iterations) {
		t.Errorf("ide_iterations_total = %d, want %d", snap.Counters["ide_iterations_total"], res.Iterations)
	}
	if snap.Counters["chunkstore_read_bytes_total"] == 0 {
		t.Error("chunkstore bytes-read counter never incremented")
	}
}

// TestFMeasureGauge checks the named-gauge helper harnesses use to publish
// model accuracy.
func TestFMeasureGauge(t *testing.T) {
	reg := obs.NewRegistry()
	FMeasureGauge(reg).Set(0.75)
	if got := reg.Snapshot().Gauges["ide_fmeasure"]; got != 0.75 {
		t.Errorf("ide_fmeasure = %g", got)
	}
	FMeasureGauge(nil).Set(0.5) // nil registry must be a safe no-op
}
