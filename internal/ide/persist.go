package ide

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/uei-db/uei/internal/learn"
)

// Snapshot captures a session's labeled set so an exploration can be
// paused and resumed later (or moved between storage schemes — the labeled
// set is scheme-independent). The predictive model is not serialized; it
// is a deterministic function of the labeled set and is refitted on
// resume.
type Snapshot struct {
	// FormatVersion guards against decoding snapshots from other
	// versions.
	FormatVersion int `json:"format_version"`
	// IDs are the labeled tuple ids, in labeling order.
	IDs []uint32 `json:"ids"`
	// X are the labeled feature vectors, aligned with IDs.
	X [][]float64 `json:"x"`
	// Y are the binary labels, aligned with IDs.
	Y []int `json:"y"`
}

// snapshotFormatVersion is bumped on incompatible layout changes.
const snapshotFormatVersion = 1

// Snapshot returns a copy of the session's current labeled set.
func (s *Session) Snapshot() Snapshot {
	snap := Snapshot{
		FormatVersion: snapshotFormatVersion,
		IDs:           append([]uint32(nil), s.labeledIDs...),
		Y:             append([]int(nil), s.labeledY...),
		X:             make([][]float64, len(s.labeledX)),
	}
	for i, row := range s.labeledX {
		snap.X[i] = append([]float64(nil), row...)
	}
	return snap
}

// validate checks a snapshot's internal consistency.
func (snap Snapshot) validate() error {
	if snap.FormatVersion != snapshotFormatVersion {
		return fmt.Errorf("ide: snapshot format %d, want %d", snap.FormatVersion, snapshotFormatVersion)
	}
	if len(snap.IDs) != len(snap.X) || len(snap.IDs) != len(snap.Y) {
		return fmt.Errorf("ide: snapshot arrays disagree: %d ids, %d rows, %d labels", len(snap.IDs), len(snap.X), len(snap.Y))
	}
	if len(snap.IDs) == 0 {
		return fmt.Errorf("ide: empty snapshot")
	}
	dims := len(snap.X[0])
	for i, row := range snap.X {
		if len(row) != dims {
			return fmt.Errorf("ide: snapshot row %d has %d dims, row 0 has %d", i, len(row), dims)
		}
	}
	for i, y := range snap.Y {
		if y != learn.ClassNegative && y != learn.ClassPositive {
			return fmt.Errorf("ide: snapshot label %d of row %d is not binary", y, i)
		}
	}
	return nil
}

// Save serializes the snapshot as JSON.
func (snap Snapshot) Save(w io.Writer) error {
	if err := snap.validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("ide: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot parses a snapshot written by Save.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var snap Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return Snapshot{}, fmt.Errorf("ide: decode snapshot: %w", err)
	}
	if err := snap.validate(); err != nil {
		return Snapshot{}, err
	}
	return snap, nil
}

// NewSessionFromSnapshot resumes an exploration: the snapshot's labeled set
// is installed (and reported to the provider so those tuples leave the
// unlabeled pool), and Run continues the interactive loop from there —
// skipping initial-example acquisition when the snapshot already holds
// both classes.
func NewSessionFromSnapshot(cfg Config, provider Provider, labeler Labeler, snap Snapshot) (*Session, error) {
	if err := snap.validate(); err != nil {
		return nil, err
	}
	sess, err := NewSession(cfg, provider, labeler)
	if err != nil {
		return nil, err
	}
	sess.labeledIDs = append([]uint32(nil), snap.IDs...)
	sess.labeledY = append([]int(nil), snap.Y...)
	sess.labeledX = make([][]float64, len(snap.X))
	for i, row := range snap.X {
		sess.labeledX[i] = append([]float64(nil), row...)
	}
	sess.resumed = true
	return sess, nil
}
