// Package ide implements the active learning-based interactive data
// exploration engine of Algorithm 1 / Algorithm 2 — the role REQUEST [9]
// plays in the paper's evaluation — with a pluggable storage Provider so the
// same loop runs over UEI (internal/core) or over the DBMS baseline
// (internal/dbms), exactly like the paper's two schemes.
package ide

import (
	"context"
	"fmt"

	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dbms"
	"github.com/uei-db/uei/internal/learn"
)

// Provider supplies unlabeled candidates each iteration and materializes
// the final result set. Implementations are single-goroutine; the context
// threaded into each method bounds that call's I/O (region loads, table
// scans) and descends from the one passed to Session.Run.
type Provider interface {
	// Name identifies the scheme in reports ("uei", "dbms").
	Name() string
	// Prepare runs once before the exploration loop (e.g. filling UEI's
	// uniform cache).
	Prepare(ctx context.Context) error
	// BeforeSelect runs at the start of every iteration with the current
	// model; UEI re-scores its symbolic points and swaps regions here. It
	// is part of the user-perceived response time.
	BeforeSelect(ctx context.Context, model learn.Classifier) error
	// Candidates streams the current unlabeled pool. The row slice passed
	// to fn may be reused between calls; callers must copy rows they keep.
	Candidates(ctx context.Context, fn func(id uint32, row []float64) bool) error
	// OnLabeled removes a tuple from the unlabeled pool.
	OnLabeled(id uint32)
	// ModelUpdated tells the provider the classifier was retrained.
	ModelUpdated()
	// Retrieve returns the ids the final model classifies positive
	// (Algorithm 1 line 13 / Algorithm 2 line 26).
	Retrieve(ctx context.Context, model learn.Classifier) ([]uint32, error)
}

// UEIProvider adapts a core.Index to the Provider interface.
type UEIProvider struct {
	idx *core.Index
	// RetrievalCutoff is the cell-pruning posterior for ResultRetrieval;
	// 0 retrieves exactly.
	RetrievalCutoff float64
}

// NewUEIProvider wraps an opened index.
func NewUEIProvider(idx *core.Index) (*UEIProvider, error) {
	if idx == nil {
		return nil, fmt.Errorf("ide: nil index")
	}
	return &UEIProvider{idx: idx}, nil
}

// Name implements Provider.
func (p *UEIProvider) Name() string { return "uei" }

// Prepare implements Provider: it fills the γ-sample cache.
func (p *UEIProvider) Prepare(ctx context.Context) error { return p.idx.InitExploration(ctx) }

// BeforeSelect implements Provider: Algorithm 2 lines 15-20 (re-score P,
// choose p*, load g* — with prefetch/deferral inside the index). On a
// live index opened with FollowLive it first advances the pinned snapshot
// to the newest flushed epoch: the iteration boundary is the only point
// where the visible row set may move, so within the iteration scores,
// regions, and retrieval all agree on one epoch.
func (p *UEIProvider) BeforeSelect(ctx context.Context, model learn.Classifier) error {
	if p.idx.FollowsLive() {
		if _, err := p.idx.AdvanceSnapshot(); err != nil {
			return err
		}
	}
	_, err := p.idx.EnsureRegion(ctx, model)
	return err
}

// Candidates implements Provider: the resident sample plus loaded region.
func (p *UEIProvider) Candidates(_ context.Context, fn func(id uint32, row []float64) bool) error {
	p.idx.Candidates(fn)
	return nil
}

// OnLabeled implements Provider.
func (p *UEIProvider) OnLabeled(id uint32) { p.idx.MarkLabeled(id) }

// ModelUpdated implements Provider: symbolic-point scores are stale.
func (p *UEIProvider) ModelUpdated() { p.idx.InvalidateScores() }

// Retrieve implements Provider using UEI's grid-pruned retrieval.
func (p *UEIProvider) Retrieve(ctx context.Context, model learn.Classifier) ([]uint32, error) {
	return p.idx.ResultRetrieval(ctx, model, p.RetrievalCutoff)
}

// LastStepDegraded reports whether the index's latest EnsureRegion ran
// degraded (a sharded index skipped unavailable shards); the engine
// surfaces it on the iteration's Proposal and IterationInfo.
func (p *UEIProvider) LastStepDegraded() bool { return p.idx.LastStepDegraded() }

// Index exposes the wrapped index for statistics.
func (p *UEIProvider) Index() *core.Index { return p.idx }

// DBMSProvider adapts a dbms.Table: every iteration streams the whole table
// from secondary storage through the buffer pool — the exhaustive search
// the paper's baseline performs (§4.2: "uncertainty sampling requires an
// exhaustive search over the entire data space").
type DBMSProvider struct {
	table   *dbms.Table
	labeled map[uint32]bool
}

// NewDBMSProvider wraps an open table.
func NewDBMSProvider(table *dbms.Table) (*DBMSProvider, error) {
	if table == nil {
		return nil, fmt.Errorf("ide: nil table")
	}
	return &DBMSProvider{table: table, labeled: make(map[uint32]bool)}, nil
}

// Name implements Provider.
func (p *DBMSProvider) Name() string { return "dbms" }

// Prepare implements Provider (nothing to warm: the baseline has no
// exploration-specific structures, only the buffer pool).
func (p *DBMSProvider) Prepare(context.Context) error { return nil }

// BeforeSelect implements Provider (no per-iteration setup).
func (p *DBMSProvider) BeforeSelect(context.Context, learn.Classifier) error { return nil }

// Candidates implements Provider with a full table scan, skipping labeled
// tuples.
func (p *DBMSProvider) Candidates(ctx context.Context, fn func(id uint32, row []float64) bool) error {
	return p.table.Scan(ctx, func(id uint32, row []float64) bool {
		if p.labeled[id] {
			return true
		}
		return fn(id, row)
	})
}

// OnLabeled implements Provider.
func (p *DBMSProvider) OnLabeled(id uint32) { p.labeled[id] = true }

// ModelUpdated implements Provider (stateless with respect to the model).
func (p *DBMSProvider) ModelUpdated() {}

// Retrieve implements Provider with one more full scan.
func (p *DBMSProvider) Retrieve(ctx context.Context, model learn.Classifier) ([]uint32, error) {
	var out []uint32
	var scanErr error
	err := p.table.Scan(ctx, func(id uint32, row []float64) bool {
		cls, err := learn.Predict(model, row)
		if err != nil {
			scanErr = err
			return false
		}
		if cls == learn.ClassPositive {
			out = append(out, id)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	return out, nil
}

// Table exposes the wrapped table for statistics.
func (p *DBMSProvider) Table() *dbms.Table { return p.table }
