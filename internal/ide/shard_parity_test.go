package ide

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/shard"
)

// ueiShardedProvider mirrors ueiProvider over a sharded store.
func (f *fixture) ueiShardedProvider(t *testing.T, sample, shards int) *UEIProvider {
	t.Helper()
	dir := t.TempDir()
	if err := core.Build(dir, f.ds, core.BuildOptions{TargetChunkBytes: 2048, Shards: shards}); err != nil {
		t.Fatal(err)
	}
	idx, err := core.Open(context.Background(), dir, core.Options{
		MemoryBudgetBytes: 1 << 20, SampleSize: sample, Seed: 3, Shards: shards, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	p, err := NewUEIProvider(idx)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// sessionTrace captures everything a run decides: the labeled sequence,
// the degraded flags, and the final retrieved set.
type sessionTrace struct {
	picks    []uint32
	degraded []bool
	positive []uint32
	labels   int
}

// runTracedSession builds a fresh fixture per run — the oracle counts
// labels across its lifetime, so sessions must not share one.
func runTracedSession(t *testing.T, shards int) sessionTrace {
	t.Helper()
	f := newFixture(t, 1500, 0.02)
	var p Provider
	if shards > 1 {
		p = f.ueiShardedProvider(t, 200, shards)
	} else {
		p = f.ueiProvider(t, 200)
	}
	var tr sessionTrace
	cfg := Config{
		MaxLabels:        25,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             7,
		SeedWithPositive: true,
		OnIteration: func(it IterationInfo) {
			tr.picks = append(tr.picks, it.SelectedID)
			tr.degraded = append(tr.degraded, it.Degraded)
		},
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tr.positive = res.Positive
	tr.labels = res.LabelsUsed
	return tr
}

// TestShardedSessionParity runs complete exploration sessions — bootstrap,
// labeling loop, result retrieval — against a flat store and against
// sharded stores with S in {2, 4, 8}, all over the same dataset with the
// same seed. Every decision must be byte-identical: the sharded layout is
// a storage re-organization, not a semantic change.
func TestShardedSessionParity(t *testing.T) {
	want := runTracedSession(t, 1)
	if len(want.picks) == 0 || len(want.positive) == 0 {
		t.Fatalf("flat session degenerate: %d picks, %d positives", len(want.picks), len(want.positive))
	}
	for _, shards := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("S=%d", shards), func(t *testing.T) {
			got := runTracedSession(t, shards)
			if got.labels != want.labels {
				t.Errorf("labels used: %d, flat used %d", got.labels, want.labels)
			}
			if len(got.picks) != len(want.picks) {
				t.Fatalf("%d iterations, flat ran %d", len(got.picks), len(want.picks))
			}
			for i := range got.picks {
				if got.picks[i] != want.picks[i] {
					t.Fatalf("iteration %d labeled row %d, flat labeled %d", i, got.picks[i], want.picks[i])
				}
				if got.degraded[i] {
					t.Errorf("iteration %d flagged degraded on a healthy store", i)
				}
			}
			if len(got.positive) != len(want.positive) {
				t.Fatalf("retrieved %d rows, flat retrieved %d", len(got.positive), len(want.positive))
			}
			for i := range got.positive {
				if got.positive[i] != want.positive[i] {
					t.Fatalf("retrieved[%d] = %d, flat has %d", i, got.positive[i], want.positive[i])
				}
			}
		})
	}
}

// TestShardedSessionDegradedFlag drives a session over a sharded store
// with one shard failing its scoring pass and checks the degradation flag
// reaches the IDE layer's per-iteration surface.
func TestShardedSessionDegradedFlag(t *testing.T) {
	f := newFixture(t, 1200, 0.05)
	p := f.ueiShardedProvider(t, 150, 4)
	p.idx.ShardCoordinator().SetFaultHook(func(_ context.Context, s, _ int, op string) error {
		if s == 1 && op == shard.OpScore {
			return errors.New("injected fault")
		}
		return nil
	})
	var sawDegraded bool
	cfg := Config{
		MaxLabels:        12,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             7,
		SeedWithPositive: true,
		OnIteration: func(it IterationInfo) {
			if it.Degraded {
				sawDegraded = true
			}
		},
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !sawDegraded {
		t.Error("no iteration reported Degraded despite a failing shard")
	}
}
