package ide

import (
	"context"
	"errors"
	"testing"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/oracle"
)

// TestStepDrivenMatchesRun: driving the session step-wise with
// Propose/Resolve/Finish must reproduce Run exactly — same solicited
// tuples, same iteration count, same retrieved result set.
func TestStepDrivenMatchesRun(t *testing.T) {
	ctx := context.Background()
	f := newFixture(t, 2500, 0.02)

	cfg := Config{
		MaxLabels:        25,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             11,
		SeedWithPositive: true,
	}

	// Run-driven session.
	var runSelections []uint32
	cfgA := cfg
	cfgA.OnIteration = func(it IterationInfo) { runSelections = append(runSelections, it.SelectedID) }
	sessA, err := NewSession(cfgA, f.ueiProvider(t, 400), OracleLabeler{O: mustOracle(t, f)})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := sessA.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Step-driven session over an identically configured environment.
	var stepSelections []uint32
	sessB, err := NewSession(cfg, f.ueiProvider(t, 400), OracleLabeler{O: mustOracle(t, f)})
	if err != nil {
		t.Fatal(err)
	}
	for {
		p, err := sessB.Propose(ctx)
		if errors.Is(err, ErrExplorationDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		// Re-proposing without resolving must be idempotent.
		if p2, err := sessB.Propose(ctx); err != nil || p2.ID != p.ID {
			t.Fatalf("re-propose: got (%v, %v), want proposal %d again", p2, err, p.ID)
		}
		if !p.Bootstrap {
			stepSelections = append(stepSelections, p.ID)
		}
		if _, err := sessB.Resolve(ctx); err != nil {
			t.Fatal(err)
		}
	}
	resB, err := sessB.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if len(runSelections) == 0 {
		t.Fatal("Run made no selections")
	}
	if len(runSelections) != len(stepSelections) {
		t.Fatalf("Run selected %d tuples, step-driven %d", len(runSelections), len(stepSelections))
	}
	for i := range runSelections {
		if runSelections[i] != stepSelections[i] {
			t.Fatalf("selection %d: Run chose %d, step-driven chose %d", i, runSelections[i], stepSelections[i])
		}
	}
	if resA.Iterations != resB.Iterations || resA.LabelsUsed != resB.LabelsUsed {
		t.Errorf("summaries disagree: Run %d iters/%d labels, step %d/%d",
			resA.Iterations, resA.LabelsUsed, resB.Iterations, resB.LabelsUsed)
	}
	if len(resA.Positive) != len(resB.Positive) {
		t.Fatalf("Run retrieved %d tuples, step-driven %d", len(resA.Positive), len(resB.Positive))
	}
	for i := range resA.Positive {
		if resA.Positive[i] != resB.Positive[i] {
			t.Fatalf("result %d: Run %d, step %d", i, resA.Positive[i], resB.Positive[i])
		}
	}
}

// TestFeedMatchesOracleLabeler: a session whose labels arrive externally
// through Feed (the serving path) must match one whose OracleLabeler
// answers inline, when the fed answers are the same ground truth.
func TestFeedMatchesOracleLabeler(t *testing.T) {
	ctx := context.Background()
	// A wide region so pure random acquisition (no positive seeding, which
	// an ExternalLabeler cannot provide) finds both classes quickly.
	f := newFixture(t, 1500, 0.25)
	orc := mustOracle(t, f)

	cfg := Config{
		MaxLabels:        15,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             7,
	}

	var inlineSelections []uint32
	cfgA := cfg
	cfgA.OnIteration = func(it IterationInfo) { inlineSelections = append(inlineSelections, it.SelectedID) }
	sessA, err := NewSession(cfgA, f.ueiProvider(t, 300), OracleLabeler{O: mustOracle(t, f)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sessA.Run(ctx); err != nil {
		t.Fatal(err)
	}

	var fedSelections []uint32
	sessB, err := NewSession(cfg, f.ueiProvider(t, 300), &ExternalLabeler{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		p, err := sessB.Propose(ctx)
		if errors.Is(err, ErrExplorationDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !p.Bootstrap {
			fedSelections = append(fedSelections, p.ID)
		}
		// The "remote user" answers from the same ground truth.
		if _, err := sessB.Feed(ctx, orc.LabelID(dataset.RowID(p.ID))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sessB.Finish(ctx); err != nil {
		t.Fatal(err)
	}

	if len(inlineSelections) == 0 || len(inlineSelections) != len(fedSelections) {
		t.Fatalf("inline selected %d tuples, fed %d", len(inlineSelections), len(fedSelections))
	}
	for i := range inlineSelections {
		if inlineSelections[i] != fedSelections[i] {
			t.Fatalf("selection %d: inline %d, fed %d", i, inlineSelections[i], fedSelections[i])
		}
	}
}

// TestStepMisuse: resolving without a proposal, feeding a non-external
// labeler, and finishing with an outstanding proposal all fail loudly.
func TestStepMisuse(t *testing.T) {
	ctx := context.Background()
	f := newFixture(t, 800, 0.2)
	sess, err := NewSession(Config{
		MaxLabels:        5,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             3,
	}, f.ueiProvider(t, 200), OracleLabeler{O: mustOracle(t, f)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Resolve(ctx); err == nil {
		t.Error("Resolve without a proposal should fail")
	}
	if _, err := sess.Finish(ctx); err == nil {
		t.Error("Finish before the first fit should fail")
	}
	if _, err := sess.Propose(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Feed(ctx, oracle.Positive); err == nil {
		t.Error("Feed with an OracleLabeler should fail")
	}
	if _, err := sess.Finish(ctx); err == nil {
		t.Error("Finish with an outstanding proposal should fail")
	}
}

// mustOracle builds a fresh oracle over the fixture's region (fresh so the
// per-oracle label counter starts at zero for each session).
func mustOracle(t *testing.T, f *fixture) *oracle.Oracle {
	t.Helper()
	orc, err := oracle.New(f.ds, f.region)
	if err != nil {
		t.Fatal(err)
	}
	return orc
}
