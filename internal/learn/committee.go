package learn

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/uei-db/uei/internal/kernel"
)

// Committee trains an ensemble of classifiers on bootstrap resamples of the
// labeled set. It backs the query-by-committee strategy (Seung et al. 1992,
// reference [21]): disagreement among members measures informativeness. The
// committee is itself a Classifier (mean posterior), so it can also serve as
// a bagged uncertainty estimator.
type Committee struct {
	// Members are the ensemble models; NewCommittee builds them.
	Members []Classifier
	// Seed drives bootstrap resampling.
	Seed int64

	fitted bool
}

// NewCommittee builds a committee of size n using factory to construct each
// member (factory receives the member index so implementations can vary
// internal seeds).
func NewCommittee(n int, seed int64, factory func(i int) Classifier) (*Committee, error) {
	if n < 2 {
		return nil, fmt.Errorf("learn: committee needs at least 2 members, got %d", n)
	}
	if factory == nil {
		return nil, fmt.Errorf("learn: nil member factory")
	}
	members := make([]Classifier, n)
	for i := range members {
		members[i] = factory(i)
		if members[i] == nil {
			return nil, fmt.Errorf("learn: factory returned nil member %d", i)
		}
	}
	return &Committee{Members: members, Seed: seed}, nil
}

// Fit trains each member on a bootstrap resample that is forced to contain
// at least one example of each class (otherwise posteriors are vacuous).
func (c *Committee) Fit(X [][]float64, y []int) error {
	if _, err := checkTrainingSet(X, y); err != nil {
		return err
	}
	firstPos, firstNeg := -1, -1
	for i, label := range y {
		if label == ClassPositive && firstPos < 0 {
			firstPos = i
		}
		if label == ClassNegative && firstNeg < 0 {
			firstNeg = i
		}
	}
	if firstPos < 0 || firstNeg < 0 {
		return fmt.Errorf("learn: committee needs both classes present")
	}

	rng := rand.New(rand.NewSource(c.Seed))
	n := len(X)
	for m, member := range c.Members {
		bx := make([][]float64, 0, n)
		by := make([]int, 0, n)
		hasPos, hasNeg := false, false
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx = append(bx, X[j])
			by = append(by, y[j])
			hasPos = hasPos || y[j] == ClassPositive
			hasNeg = hasNeg || y[j] == ClassNegative
		}
		if !hasPos {
			bx = append(bx, X[firstPos])
			by = append(by, y[firstPos])
		}
		if !hasNeg {
			bx = append(bx, X[firstNeg])
			by = append(by, y[firstNeg])
		}
		if err := member.Fit(bx, by); err != nil {
			return fmt.Errorf("learn: committee member %d: %w", m, err)
		}
	}
	c.fitted = true
	return nil
}

// Fitted reports whether Fit has succeeded.
func (c *Committee) Fitted() bool { return c.fitted }

// PosteriorPositive returns the mean member posterior.
func (c *Committee) PosteriorPositive(x []float64) (float64, error) {
	if !c.fitted {
		return 0, ErrNotFitted
	}
	var sum float64
	for _, m := range c.Members {
		p, err := m.PosteriorPositive(x)
		if err != nil {
			return 0, err
		}
		sum += p
	}
	return clampProb(sum / float64(len(c.Members))), nil
}

// BatchPosterior implements BatchClassifier: the mean member posterior,
// computed member-by-member so each member's own batch path (and scratch
// reuse) applies. Read-only after Fit, safe on disjoint shards.
func (c *Committee) BatchPosterior(X [][]float64, out []float64) error {
	if !c.fitted {
		return ErrNotFitted
	}
	if len(X) != len(out) {
		return fmt.Errorf("learn: %d queries but %d output slots", len(X), len(out))
	}
	for i := range out {
		out[i] = 0
	}
	buf := committeeTmpPool.Get().(*committeeTmp)
	defer committeeTmpPool.Put(buf)
	if cap(buf.tmp) < len(X) {
		buf.tmp = make([]float64, len(X))
	}
	tmp := buf.tmp[:len(X)]
	for _, m := range c.Members {
		if bm, ok := m.(BatchClassifier); ok {
			if err := bm.BatchPosterior(X, tmp); err != nil {
				return err
			}
		} else {
			for i, x := range X {
				p, err := m.PosteriorPositive(x)
				if err != nil {
					return err
				}
				tmp[i] = p
			}
		}
		for i, p := range tmp {
			out[i] += p
		}
	}
	// Divide (not multiply by a reciprocal) so the result is bit-identical
	// to PosteriorPositive's sum/n — the parallel scorer's parity guarantee
	// depends on it.
	n := float64(len(c.Members))
	for i := range out {
		out[i] = clampProb(out[i] / n)
	}
	return nil
}

// BlockPosterior implements BlockClassifier: the mean member posterior over
// a packed block, member-by-member in member order — the same accumulation
// sequence as BatchPosterior, ending in the same divide — so results are
// bit-identical to both scalar paths. Members without a block path fall
// back to row reconstruction (a pure copy, so their arithmetic is
// unchanged). The member buffer is pooled: zero steady-state allocation.
func (c *Committee) BlockPosterior(blk *kernel.Block, lo, hi int, out []float64) error {
	if !c.fitted {
		return ErrNotFitted
	}
	w := hi - lo
	buf := committeeTmpPool.Get().(*committeeTmp)
	defer committeeTmpPool.Put(buf)
	if cap(buf.tmp) < w {
		buf.tmp = make([]float64, w)
	}
	if cap(buf.row) < blk.Dims {
		buf.row = make([]float64, blk.Dims)
	}
	tmp := buf.tmp[:w]
	dst := out[:w]
	for i := range dst {
		dst[i] = 0
	}
	for _, m := range c.Members {
		if bm, ok := m.(BlockClassifier); ok {
			if err := bm.BlockPosterior(blk, lo, hi, tmp); err != nil {
				return err
			}
		} else {
			for i := 0; i < w; i++ {
				p, err := m.PosteriorPositive(blk.Row(lo+i, buf.row))
				if err != nil {
					return err
				}
				tmp[i] = p
			}
		}
		for i, p := range tmp {
			dst[i] += p
		}
	}
	// Divide (not multiply by a reciprocal): same parity rationale as
	// BatchPosterior.
	n := float64(len(c.Members))
	for i := range dst {
		dst[i] = clampProb(dst[i] / n)
	}
	return nil
}

type committeeTmp struct {
	tmp []float64
	row []float64
}

var committeeTmpPool = sync.Pool{New: func() any { return &committeeTmp{} }}

// VoteDisagreement returns the fraction of members whose hard vote differs
// from the majority, in [0, 0.5]. Query-by-committee selects the point that
// maximizes it.
func (c *Committee) VoteDisagreement(x []float64) (float64, error) {
	if !c.fitted {
		return 0, ErrNotFitted
	}
	pos := 0
	for _, m := range c.Members {
		cls, err := Predict(m, x)
		if err != nil {
			return 0, err
		}
		if cls == ClassPositive {
			pos++
		}
	}
	frac := float64(pos) / float64(len(c.Members))
	if frac > 0.5 {
		frac = 1 - frac
	}
	return frac, nil
}
