package learn

import (
	"context"
	"fmt"
	"sync"

	"github.com/uei-db/uei/internal/kernel"
)

// BlockClassifier is implemented by classifiers with a columnar scoring
// path over a packed kernel.Block. BlockPosterior fills out[0:hi-lo] with
// P(positive | block point i) for i in [lo, hi). Implementations must be
// read-only with respect to the model (disjoint ranges run concurrently)
// and bit-identical to the row paths — the block layout may change memory
// order, never the per-point arithmetic. All four classifiers in this
// package comply.
type BlockClassifier interface {
	Classifier
	BlockPosterior(blk *kernel.Block, lo, hi int, out []float64) error
}

// classifierUnwrapper is implemented by decorators (e.g. the shard layer's
// serialization memoizer) that wrap a Classifier without re-implementing
// its optimized paths.
type classifierUnwrapper interface{ UnwrapClassifier() Classifier }

// UnwrapClassifier peels decorator layers off c until the innermost
// classifier is reached.
func UnwrapClassifier(c Classifier) Classifier {
	for {
		u, ok := c.(classifierUnwrapper)
		if !ok {
			return c
		}
		c = u.UnwrapClassifier()
	}
}

// AsBlockClassifier reports whether c (possibly behind decorators) has a
// columnar scoring path.
func AsBlockClassifier(c Classifier) (BlockClassifier, bool) {
	bc, ok := UnwrapClassifier(c).(BlockClassifier)
	return bc, ok
}

// AsDWKNN reports whether c (possibly behind decorators) is a DWKNN — the
// model with an exact incremental rescoring rule.
func AsDWKNN(c Classifier) (*DWKNN, bool) {
	dw, ok := UnwrapClassifier(c).(*DWKNN)
	return dw, ok
}

// rowScratchPool backs the row-reconstruction fallback for classifiers
// without a block path.
var rowScratchPool = sync.Pool{New: func() any { return new([]float64) }}

// BlockPosteriorsInto fills out[0:hi-lo] with posteriors of block points
// [lo, hi), checking ctx between batchBlock-sized chunks exactly like
// PosteriorsInto. Classifiers without a block path fall back to row
// reconstruction (a pure copy), so results match the row path bit for bit
// in every case.
func BlockPosteriorsInto(ctx context.Context, c Classifier, blk *kernel.Block, lo, hi int, out []float64) error {
	if hi-lo != len(out) {
		return fmt.Errorf("learn: %d block points but %d output slots", hi-lo, len(out))
	}
	bc, hasBlock := AsBlockClassifier(c)
	var row []float64
	var rowPtr *[]float64
	if !hasBlock {
		rowPtr = rowScratchPool.Get().(*[]float64)
		if cap(*rowPtr) < blk.Dims {
			*rowPtr = make([]float64, blk.Dims)
		}
		row = (*rowPtr)[:blk.Dims]
		defer rowScratchPool.Put(rowPtr)
	}
	for base := lo; base < hi; base += batchBlock {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := base + batchBlock
		if end > hi {
			end = hi
		}
		if hasBlock {
			if err := bc.BlockPosterior(blk, base, end, out[base-lo:end-lo]); err != nil {
				return err
			}
			continue
		}
		for i := base; i < end; i++ {
			p, err := c.PosteriorPositive(blk.Row(i, row))
			if err != nil {
				return err
			}
			out[i-lo] = p
		}
	}
	return nil
}

// BlockPosteriors fills out[i] = P(positive | block point i) using up to
// workers goroutines over contiguous block ranges — the columnar twin of
// Posteriors, byte-identical to it for any worker count.
func BlockPosteriors(ctx context.Context, c Classifier, blk *kernel.Block, out []float64, workers int) error {
	n := blk.N
	if n != len(out) {
		return fmt.Errorf("learn: %d block points but %d output slots", n, len(out))
	}
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return BlockPosteriorsInto(ctx, c, blk, 0, n, out)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo, hi := s*n/workers, (s+1)*n/workers
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[s] = BlockPosteriorsInto(ctx, c, blk, lo, hi, out[lo:hi])
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// BlockUncertaintiesInto is BlockPosteriorsInto followed by the
// least-confidence transform min(p, 1-p) — the columnar twin of
// UncertaintiesInto.
func BlockUncertaintiesInto(ctx context.Context, c Classifier, blk *kernel.Block, lo, hi int, out []float64) error {
	if err := BlockPosteriorsInto(ctx, c, blk, lo, hi, out); err != nil {
		return err
	}
	for i, p := range out {
		if p > 0.5 {
			out[i] = 1 - p
		}
	}
	return nil
}

// BlockUncertaintiesDKInto scores block points [lo, hi) with a DWKNN,
// writing uncertainties to out[0:hi-lo] and each point's k-th-neighbor
// squared distance to dk2[0:hi-lo] — one pass produces both the scores and
// the incremental rescorer's bounds.
func BlockUncertaintiesDKInto(ctx context.Context, dw *DWKNN, blk *kernel.Block, lo, hi int, out, dk2 []float64) error {
	if hi-lo != len(out) || hi-lo != len(dk2) {
		return fmt.Errorf("learn: %d block points but %d/%d output slots", hi-lo, len(out), len(dk2))
	}
	for base := lo; base < hi; base += batchBlock {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := base + batchBlock
		if end > hi {
			end = hi
		}
		if err := dw.BlockPosteriorDK(blk, base, end, out[base-lo:end-lo], dk2[base-lo:end-lo]); err != nil {
			return err
		}
	}
	for i, p := range out {
		if p > 0.5 {
			out[i] = 1 - p
		}
	}
	return nil
}

// BlockUncertaintiesDKAt is BlockUncertaintiesDKInto over an arbitrary
// ascending subset of block points — the dirty-cell rescoring path. out
// and dk2 align with cells.
func BlockUncertaintiesDKAt(ctx context.Context, dw *DWKNN, blk *kernel.Block, cells []int, out, dk2 []float64) error {
	if len(cells) != len(out) || len(cells) != len(dk2) {
		return fmt.Errorf("learn: %d dirty cells but %d/%d output slots", len(cells), len(out), len(dk2))
	}
	for base := 0; base < len(cells); base += batchBlock {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := base + batchBlock
		if end > len(cells) {
			end = len(cells)
		}
		if err := dw.BlockPosteriorDKAt(blk, cells[base:end], out[base:end], dk2[base:end]); err != nil {
			return err
		}
	}
	for i, p := range out {
		if p > 0.5 {
			out[i] = 1 - p
		}
	}
	return nil
}
