package learn

import (
	"fmt"
	"math"

	"github.com/uei-db/uei/internal/kernel"
)

// GaussianNB is a Gaussian naive Bayes binary classifier: each class models
// each attribute as an independent normal distribution. It is one of the
// "probability-based predictive models (e.g., Naive Bayes, SVM, etc.)" the
// paper names as compatible with uncertainty sampling (§2.1).
type GaussianNB struct {
	// VarSmoothing is added to every per-dimension variance to keep
	// likelihoods finite on degenerate attributes. NewGaussianNB defaults
	// it to 1e-9 times the largest feature variance, recomputed per fit.
	VarSmoothing float64

	dims     int
	mean     [2][]float64
	variance [2][]float64
	logPrior [2]float64
	fitted   bool
}

// NewGaussianNB returns a GaussianNB with default smoothing.
func NewGaussianNB() *GaussianNB { return &GaussianNB{} }

// Fit estimates per-class feature means, variances, and class priors.
func (c *GaussianNB) Fit(X [][]float64, y []int) error {
	dims, err := checkTrainingSet(X, y)
	if err != nil {
		return err
	}
	var count [2]int
	for _, label := range y {
		count[label]++
	}
	if count[0] == 0 || count[1] == 0 {
		return fmt.Errorf("learn: GaussianNB needs both classes present (have %d negative, %d positive)", count[0], count[1])
	}

	var mean, variance [2][]float64
	for cls := 0; cls < 2; cls++ {
		mean[cls] = make([]float64, dims)
		variance[cls] = make([]float64, dims)
	}
	for i, row := range X {
		cls := y[i]
		for j, v := range row {
			mean[cls][j] += v
		}
	}
	for cls := 0; cls < 2; cls++ {
		for j := range mean[cls] {
			mean[cls][j] /= float64(count[cls])
		}
	}
	for i, row := range X {
		cls := y[i]
		for j, v := range row {
			d := v - mean[cls][j]
			variance[cls][j] += d * d
		}
	}
	maxVar := 0.0
	for cls := 0; cls < 2; cls++ {
		for j := range variance[cls] {
			variance[cls][j] /= float64(count[cls])
			if variance[cls][j] > maxVar {
				maxVar = variance[cls][j]
			}
		}
	}
	smoothing := c.VarSmoothing
	if smoothing <= 0 {
		smoothing = 1e-9 * maxVar
		if smoothing <= 0 {
			smoothing = 1e-9
		}
	}
	for cls := 0; cls < 2; cls++ {
		for j := range variance[cls] {
			variance[cls][j] += smoothing
		}
	}

	c.dims = dims
	c.mean = mean
	c.variance = variance
	total := float64(len(y))
	c.logPrior[0] = math.Log(float64(count[0]) / total)
	c.logPrior[1] = math.Log(float64(count[1]) / total)
	c.fitted = true
	return nil
}

// Fitted reports whether Fit has succeeded.
func (c *GaussianNB) Fitted() bool { return c.fitted }

// PosteriorPositive computes P(positive|x) via Bayes' rule in log space.
func (c *GaussianNB) PosteriorPositive(x []float64) (float64, error) {
	if !c.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != c.dims {
		return 0, fmt.Errorf("learn: query has %d dims, model has %d", len(x), c.dims)
	}
	var logLik [2]float64
	for cls := 0; cls < 2; cls++ {
		ll := c.logPrior[cls]
		for j, v := range x {
			variance := c.variance[cls][j]
			d := v - c.mean[cls][j]
			ll += -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
		}
		logLik[cls] = ll
	}
	// Softmax over two log-likelihoods, stabilized by the max.
	m := math.Max(logLik[0], logLik[1])
	e0 := math.Exp(logLik[0] - m)
	e1 := math.Exp(logLik[1] - m)
	return clampProb(e1 / (e0 + e1)), nil
}

// BatchPosterior implements BatchClassifier. The per-query evaluation is
// already allocation-free, so the batch path is a plain read-only loop,
// safe to run concurrently on disjoint shards.
func (c *GaussianNB) BatchPosterior(X [][]float64, out []float64) error {
	if len(X) != len(out) {
		return fmt.Errorf("learn: %d queries but %d output slots", len(X), len(out))
	}
	for i, x := range X {
		p, err := c.PosteriorPositive(x)
		if err != nil {
			return err
		}
		out[i] = p
	}
	return nil
}

// BlockPosterior implements BlockClassifier: per-class log-likelihood
// strips over the block's columns. The per-dimension term precomputes
// -0.5·log(2π·var) and 2·var once per (class, dimension) — pure functions
// of the variance, so every per-point add is the scalar path's expression
// bit for bit — and accumulates in ascending dimension order.
func (c *GaussianNB) BlockPosterior(blk *kernel.Block, lo, hi int, out []float64) error {
	if !c.fitted {
		return ErrNotFitted
	}
	if blk.Dims != c.dims {
		return fmt.Errorf("learn: block has %d dims, model has %d", blk.Dims, c.dims)
	}
	const strip = 512
	var llBuf [2][strip]float64
	for base := lo; base < hi; base += strip {
		w := hi - base
		if w > strip {
			w = strip
		}
		for cls := 0; cls < 2; cls++ {
			ll := llBuf[cls][:w]
			for i := range ll {
				ll[i] = c.logPrior[cls]
			}
			for j := 0; j < c.dims; j++ {
				variance := c.variance[cls][j]
				logTerm := -0.5 * math.Log(2*math.Pi*variance)
				kernel.AddGaussianLL(ll, blk.Col(j)[base:base+w], c.mean[cls][j], logTerm, 2*variance)
			}
		}
		// Softmax over two log-likelihoods, stabilized by the max.
		dst := out[base-lo : base-lo+w]
		for i := 0; i < w; i++ {
			m := math.Max(llBuf[0][i], llBuf[1][i])
			e0 := math.Exp(llBuf[0][i] - m)
			e1 := math.Exp(llBuf[1][i] - m)
			dst[i] = clampProb(e1 / (e0 + e1))
		}
	}
	return nil
}
