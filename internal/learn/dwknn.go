package learn

import (
	"fmt"
	"math"
	"sort"
)

// DWKNN is the dual weighted k-nearest-neighbor classifier of Gou et al.,
// "A new distance-weighted k-nearest neighbor classifier" (J. Inf. Comput.
// Sci. 2012), reference [11] of the paper and its chosen uncertainty
// estimator (Table 1).
//
// For a query x with neighbors sorted by distance d1 <= d2 <= ... <= dk, the
// i-th neighbor receives the dual weight
//
//	w_i = (dk - di)/(dk - d1) * (dk + d1)/(dk + di)
//
// with w_i = 1 when dk == d1 (all neighbors equidistant). The positive
// posterior is the normalized positive weight mass. The dual weight combines
// the linear distance-rank weight with a harmonic damping term, which is
// what distinguishes DWKNN from classic distance-weighted k-NN.
type DWKNN struct {
	// K is the neighborhood size. NewDWKNN defaults it to 7.
	K int
	// Scales optionally divides each dimension before computing distances,
	// protecting the metric from dominance by wide-range attributes (e.g.
	// rowc in [0,2048] vs dec in [-90,90]). When nil, Fit derives scales
	// from the training data extent; a caller who knows the full data
	// domain (the IDE engine does) should set it explicitly so scaling does
	// not drift as the labeled set grows.
	Scales []float64

	x      [][]float64 // scaled copies of the training rows
	y      []int
	scales []float64 // effective scales used at fit time
	dims   int
	fitted bool
}

// NewDWKNN returns a DWKNN with neighborhood size k (0 selects the default
// of 7) and optional per-dimension scales.
func NewDWKNN(k int, scales []float64) *DWKNN {
	if k == 0 {
		k = 7
	}
	return &DWKNN{K: k, Scales: scales}
}

// Fit stores a scaled copy of the labeled set; DWKNN is a lazy learner so
// "training" is memorization.
func (c *DWKNN) Fit(X [][]float64, y []int) error {
	dims, err := checkTrainingSet(X, y)
	if err != nil {
		return err
	}
	if c.K <= 0 {
		return fmt.Errorf("learn: DWKNN k = %d must be positive", c.K)
	}
	scales, err := c.effectiveScales(X, dims)
	if err != nil {
		return err
	}
	xs := make([][]float64, len(X))
	for i, row := range X {
		s := make([]float64, dims)
		for j, v := range row {
			s[j] = v / scales[j]
		}
		xs[i] = s
	}
	c.x = xs
	c.y = append(c.y[:0:0], y...)
	c.scales = scales
	c.dims = dims
	c.fitted = true
	return nil
}

// Fitted reports whether Fit has succeeded.
func (c *DWKNN) Fitted() bool { return c.fitted }

// neighbor pairs a training index with its squared distance to the query.
type neighbor struct {
	idx int
	d2  float64
}

// PosteriorPositive returns the dual-weighted positive class probability.
func (c *DWKNN) PosteriorPositive(x []float64) (float64, error) {
	if !c.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != c.dims {
		return 0, fmt.Errorf("learn: query has %d dims, model has %d", len(x), c.dims)
	}
	s := newDWKNNScratch(c)
	return c.posterior(x, s), nil
}

// BatchPosterior implements BatchClassifier: it reuses one scratch buffer
// across the whole batch, so the per-query cost is pure distance math with
// no allocation. It is read-only and safe to call concurrently on disjoint
// shards (the parallel scorer shards query points across workers).
func (c *DWKNN) BatchPosterior(X [][]float64, out []float64) error {
	if !c.fitted {
		return ErrNotFitted
	}
	if len(X) != len(out) {
		return fmt.Errorf("learn: %d queries but %d output slots", len(X), len(out))
	}
	s := newDWKNNScratch(c)
	for i, x := range X {
		if len(x) != c.dims {
			return fmt.Errorf("learn: query %d has %d dims, model has %d", i, len(x), c.dims)
		}
		out[i] = c.posterior(x, s)
	}
	return nil
}

// dwknnScratch holds the per-call buffers of the k-NN search so batch
// evaluation allocates once per shard instead of once per query.
type dwknnScratch struct {
	q     []float64
	all   []neighbor
	dists []float64
}

func newDWKNNScratch(c *DWKNN) *dwknnScratch {
	k := c.K
	if k > len(c.x) {
		k = len(c.x)
	}
	return &dwknnScratch{
		q:     make([]float64, c.dims),
		all:   make([]neighbor, len(c.x)),
		dists: make([]float64, k),
	}
}

// posterior computes the dual-weighted positive posterior for one
// (dimension-checked) query using the caller's scratch.
func (c *DWKNN) posterior(x []float64, s *dwknnScratch) float64 {
	k := c.K
	if k > len(c.x) {
		k = len(c.x)
	}
	nb := c.nearestInto(x, k, s)

	// Distances (not squared) drive the weights.
	dists := s.dists[:len(nb)]
	for i, n := range nb {
		dists[i] = math.Sqrt(n.d2)
	}
	d1, dk := dists[0], dists[len(dists)-1]
	var wPos, wAll float64
	for i, n := range nb {
		w := 1.0
		if dk > d1 {
			w = (dk - dists[i]) / (dk - d1) * (dk + d1) / (dk + dists[i])
		}
		wAll += w
		if c.y[n.idx] == ClassPositive {
			wPos += w
		}
	}
	if wAll == 0 {
		// Degenerate: dk > d1 makes the farthest neighbor weightless, but
		// the nearest always has weight 1 unless k == 1 and the point
		// coincides; fall back to unweighted vote.
		pos := 0
		for _, n := range nb {
			if c.y[n.idx] == ClassPositive {
				pos++
			}
		}
		return clampProb(float64(pos) / float64(len(nb)))
	}
	return clampProb(wPos / wAll)
}

// nearestInto returns the k training points closest to x (scaled space),
// sorted by ascending distance with index as tie-breaker for determinism.
// The result aliases s.all and is valid until the next call.
func (c *DWKNN) nearestInto(x []float64, k int, s *dwknnScratch) []neighbor {
	q := s.q
	for j, v := range x {
		q[j] = v / c.scales[j]
	}
	all := s.all[:len(c.x)]
	for i, row := range c.x {
		var d2 float64
		for j, v := range row {
			diff := v - q[j]
			d2 += diff * diff
		}
		all[i] = neighbor{idx: i, d2: d2}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].d2 != all[b].d2 {
			return all[a].d2 < all[b].d2
		}
		return all[a].idx < all[b].idx
	})
	return all[:k]
}

// effectiveScales resolves the scaling vector used for the current fit.
func (c *DWKNN) effectiveScales(X [][]float64, dims int) ([]float64, error) {
	if c.Scales != nil {
		if len(c.Scales) != dims {
			return nil, fmt.Errorf("learn: %d scales for %d dims", len(c.Scales), dims)
		}
		out := make([]float64, dims)
		for j, s := range c.Scales {
			if s <= 0 {
				return nil, fmt.Errorf("learn: scale %d = %g must be positive", j, s)
			}
			out[j] = s
		}
		return out, nil
	}
	// Derive from training extent; degenerate dimensions get scale 1.
	out := make([]float64, dims)
	for j := 0; j < dims; j++ {
		lo, hi := X[0][j], X[0][j]
		for _, row := range X {
			if row[j] < lo {
				lo = row[j]
			}
			if row[j] > hi {
				hi = row[j]
			}
		}
		if hi > lo {
			out[j] = hi - lo
		} else {
			out[j] = 1
		}
	}
	return out, nil
}
