package learn

import (
	"fmt"
	"math"
	"sync"

	"github.com/uei-db/uei/internal/kernel"
)

// DWKNN is the dual weighted k-nearest-neighbor classifier of Gou et al.,
// "A new distance-weighted k-nearest neighbor classifier" (J. Inf. Comput.
// Sci. 2012), reference [11] of the paper and its chosen uncertainty
// estimator (Table 1).
//
// For a query x with neighbors sorted by distance d1 <= d2 <= ... <= dk, the
// i-th neighbor receives the dual weight
//
//	w_i = (dk - di)/(dk - d1) * (dk + d1)/(dk + di)
//
// with w_i = 1 when dk == d1 (all neighbors equidistant). The positive
// posterior is the normalized positive weight mass. The dual weight combines
// the linear distance-rank weight with a harmonic damping term, which is
// what distinguishes DWKNN from classic distance-weighted k-NN.
type DWKNN struct {
	// K is the neighborhood size. NewDWKNN defaults it to 7.
	K int
	// Scales optionally divides each dimension before computing distances,
	// protecting the metric from dominance by wide-range attributes (e.g.
	// rowc in [0,2048] vs dec in [-90,90]). When nil, Fit derives scales
	// from the training data extent; a caller who knows the full data
	// domain (the IDE engine does) should set it explicitly so scaling does
	// not drift as the labeled set grows — explicit scales are also what
	// makes AppendDelta fire across retrains.
	Scales []float64

	x      [][]float64 // scaled copies of the training rows
	y      []int
	scales []float64 // effective scales used at fit time
	dims   int
	fitted bool
}

// NewDWKNN returns a DWKNN with neighborhood size k (0 selects the default
// of 7) and optional per-dimension scales.
func NewDWKNN(k int, scales []float64) *DWKNN {
	if k == 0 {
		k = 7
	}
	return &DWKNN{K: k, Scales: scales}
}

// Fit stores a scaled copy of the labeled set; DWKNN is a lazy learner so
// "training" is memorization.
func (c *DWKNN) Fit(X [][]float64, y []int) error {
	dims, err := checkTrainingSet(X, y)
	if err != nil {
		return err
	}
	if c.K <= 0 {
		return fmt.Errorf("learn: DWKNN k = %d must be positive", c.K)
	}
	scales, err := c.effectiveScales(X, dims)
	if err != nil {
		return err
	}
	xs := make([][]float64, len(X))
	for i, row := range X {
		s := make([]float64, dims)
		for j, v := range row {
			s[j] = v / scales[j]
		}
		xs[i] = s
	}
	c.x = xs
	c.y = append(c.y[:0:0], y...)
	c.scales = scales
	c.dims = dims
	c.fitted = true
	return nil
}

// Fitted reports whether Fit has succeeded.
func (c *DWKNN) Fitted() bool { return c.fitted }

// neighbor pairs a training index with its squared distance to the query.
// It is the kernel package's selection element; ordering is (D2, Idx)
// ascending everywhere.
type neighbor = kernel.Neighbor

// PosteriorPositive returns the dual-weighted positive class probability.
func (c *DWKNN) PosteriorPositive(x []float64) (float64, error) {
	if !c.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != c.dims {
		return 0, fmt.Errorf("learn: query has %d dims, model has %d", len(x), c.dims)
	}
	s := getDWKNNScratch(c)
	defer putDWKNNScratch(s)
	return c.posterior(x, s), nil
}

// BatchPosterior implements BatchClassifier: it reuses one pooled scratch
// buffer across the whole batch, so the per-query cost is pure distance
// math with zero steady-state allocation. It is read-only and safe to call
// concurrently on disjoint shards (the parallel scorer shards query points
// across workers).
func (c *DWKNN) BatchPosterior(X [][]float64, out []float64) error {
	if !c.fitted {
		return ErrNotFitted
	}
	if len(X) != len(out) {
		return fmt.Errorf("learn: %d queries but %d output slots", len(X), len(out))
	}
	s := getDWKNNScratch(c)
	defer putDWKNNScratch(s)
	for i, x := range X {
		if len(x) != c.dims {
			return fmt.Errorf("learn: query %d has %d dims, model has %d", i, len(x), c.dims)
		}
		out[i] = c.posterior(x, s)
	}
	return nil
}

// dwknnScratch holds the per-call buffers of the k-NN search. Buffers are
// pooled package-wide and grown on demand, so batch evaluation allocates
// nothing in steady state.
type dwknnScratch struct {
	q     []float64
	best  []neighbor
	dists []float64
	// Block-path strips, sized lazily: qs holds the scaled query strip
	// (strip*dims), dist2 the per-row distance strips (strip*len(x)), and
	// mark the per-strip dirty flags of DirtyCells.
	qs    []float64
	dist2 []float64
	mark  []bool
}

var dwknnScratchPool = sync.Pool{New: func() any { return &dwknnScratch{} }}

func getDWKNNScratch(c *DWKNN) *dwknnScratch {
	s := dwknnScratchPool.Get().(*dwknnScratch)
	k := c.effectiveK()
	if cap(s.q) < c.dims {
		s.q = make([]float64, c.dims)
	}
	if cap(s.best) < k {
		s.best = make([]neighbor, k)
	}
	if cap(s.dists) < k {
		s.dists = make([]float64, k)
	}
	return s
}

func putDWKNNScratch(s *dwknnScratch) { dwknnScratchPool.Put(s) }

func (c *DWKNN) effectiveK() int {
	k := c.K
	if k > len(c.x) {
		k = len(c.x)
	}
	return k
}

// posterior computes the dual-weighted positive posterior for one
// (dimension-checked) query using the caller's scratch.
func (c *DWKNN) posterior(x []float64, s *dwknnScratch) float64 {
	nb := c.nearestInto(x, c.effectiveK(), s)
	p, _ := c.posteriorFrom(nb, s.dists)
	return p
}

// posteriorFrom turns a sorted neighbor list into the dual-weighted
// posterior, also returning the k-th (last) neighbor's squared distance —
// the d_k² bound the incremental rescorer keys on. dists is scratch with
// cap >= len(nb).
func (c *DWKNN) posteriorFrom(nb []neighbor, dists []float64) (float64, float64) {
	// Distances (not squared) drive the weights.
	dists = dists[:len(nb)]
	for i, n := range nb {
		dists[i] = math.Sqrt(n.D2)
	}
	d1, dk := dists[0], dists[len(dists)-1]
	var wPos, wAll float64
	for i, n := range nb {
		w := 1.0
		if dk > d1 {
			w = (dk - dists[i]) / (dk - d1) * (dk + d1) / (dk + dists[i])
		}
		wAll += w
		if c.y[n.Idx] == ClassPositive {
			wPos += w
		}
	}
	dk2 := nb[len(nb)-1].D2
	if wAll == 0 {
		// Degenerate: dk > d1 makes the farthest neighbor weightless, but
		// the nearest always has weight 1 unless k == 1 and the point
		// coincides; fall back to unweighted vote.
		pos := 0
		for _, n := range nb {
			if c.y[n.Idx] == ClassPositive {
				pos++
			}
		}
		return clampProb(float64(pos) / float64(len(nb))), dk2
	}
	return clampProb(wPos / wAll), dk2
}

// nearestInto returns the k training points closest to x (scaled space),
// sorted by ascending distance with index as tie-breaker for determinism.
// Selection is bounded insertion into a k-slot buffer — identical output
// to the former full sort+truncate ((d², idx) is a strict total order, and
// indexes ascend during the scan so ties never displace an earlier entry)
// at O(n·k) worst case instead of O(n log n), with no sort.Slice closure
// overhead. The result aliases s.best and is valid until the next call.
func (c *DWKNN) nearestInto(x []float64, k int, s *dwknnScratch) []neighbor {
	q := s.q[:c.dims]
	for j, v := range x {
		q[j] = v / c.scales[j]
	}
	best := s.best[:0]
	for i, row := range c.x {
		var d2 float64
		for j, v := range row {
			diff := v - q[j]
			d2 += diff * diff
		}
		if len(best) == k {
			if !best[k-1].Less(d2, i) {
				continue
			}
			best = best[:k-1]
		}
		j := len(best)
		best = append(best, neighbor{})
		for j > 0 && best[j-1].Less(d2, i) {
			best[j] = best[j-1]
			j--
		}
		best[j] = neighbor{Idx: i, D2: d2}
	}
	return best
}

// dwknnStrip is the block-path strip width: 256 centers × 8 bytes = 16 KiB
// per dimension column, so a strip's scaled queries plus the distance rows
// of a typical labeled set stay L2-resident.
const dwknnStrip = 256

// BlockPosterior implements BlockClassifier over a packed columnar block.
func (c *DWKNN) BlockPosterior(blk *kernel.Block, lo, hi int, out []float64) error {
	return c.BlockPosteriorDK(blk, lo, hi, out, nil)
}

// BlockPosteriorDK scores centers [lo, hi) of the block, writing posteriors
// to out[0:hi-lo] and, when dk2 is non-nil, each center's k-th-neighbor
// squared distance to dk2[0:hi-lo] — the bound the exact incremental
// rescorer needs. Bit-identical to the row path: per (center, row) the
// squared distance accumulates over dimensions in ascending order with the
// row path's exact expressions, and selection shares its (d², idx) order.
func (c *DWKNN) BlockPosteriorDK(blk *kernel.Block, lo, hi int, out, dk2 []float64) error {
	if !c.fitted {
		return ErrNotFitted
	}
	if blk.Dims != c.dims {
		return fmt.Errorf("learn: block has %d dims, model has %d", blk.Dims, c.dims)
	}
	s := getDWKNNScratch(c)
	defer putDWKNNScratch(s)
	for base := lo; base < hi; base += dwknnStrip {
		w := hi - base
		if w > dwknnStrip {
			w = dwknnStrip
		}
		qs := c.stripScratch(s, w)
		for d := 0; d < c.dims; d++ {
			kernel.ScaleInto(qs[d*w:d*w+w], blk.Col(d)[base:base+w], c.scales[d])
		}
		c.scoreStrip(s, w, out[base-lo:], dk2Sub(dk2, base-lo))
	}
	return nil
}

// BlockPosteriorDKAt scores an arbitrary (ascending) subset of block
// centers — the dirty-set path. cells indexes into the block; out and dk2
// (optional) align with cells.
func (c *DWKNN) BlockPosteriorDKAt(blk *kernel.Block, cells []int, out, dk2 []float64) error {
	if !c.fitted {
		return ErrNotFitted
	}
	if blk.Dims != c.dims {
		return fmt.Errorf("learn: block has %d dims, model has %d", blk.Dims, c.dims)
	}
	s := getDWKNNScratch(c)
	defer putDWKNNScratch(s)
	for base := 0; base < len(cells); base += dwknnStrip {
		w := len(cells) - base
		if w > dwknnStrip {
			w = dwknnStrip
		}
		qs := c.stripScratch(s, w)
		for d := 0; d < c.dims; d++ {
			col := blk.Col(d)
			sc := c.scales[d]
			qd := qs[d*w : d*w+w]
			for i, cell := range cells[base : base+w] {
				qd[i] = col[cell] / sc
			}
		}
		c.scoreStrip(s, w, out[base:], dk2Sub(dk2, base))
	}
	return nil
}

func dk2Sub(dk2 []float64, off int) []float64 {
	if dk2 == nil {
		return nil
	}
	return dk2[off:]
}

// stripScratch sizes the block-path buffers for a strip of width w and
// returns the scaled-query strip (layout [d*w+i]).
func (c *DWKNN) stripScratch(s *dwknnScratch, w int) []float64 {
	if cap(s.qs) < c.dims*w {
		s.qs = make([]float64, c.dims*dwknnStrip)
	}
	if cap(s.dist2) < len(c.x)*w {
		s.dist2 = make([]float64, len(c.x)*dwknnStrip)
	}
	return s.qs[:c.dims*w]
}

// scoreStrip computes posteriors (and optional dk²) for the w centers whose
// scaled queries are staged in s.qs, writing out[0:w] / dk2[0:w].
func (c *DWKNN) scoreStrip(s *dwknnScratch, w int, out, dk2 []float64) {
	qs := s.qs
	dist2 := s.dist2[:len(c.x)*w]
	clear(dist2)
	for r, row := range c.x {
		dr := dist2[r*w : r*w+w]
		for d, v := range row {
			kernel.AddSquaredDiff(dr, qs[d*w:d*w+w], v)
		}
	}
	k := c.effectiveK()
	for i := 0; i < w; i++ {
		nb := kernel.SelectKMin(dist2, i, w, len(c.x), k, s.best[:0])
		p, kd2 := c.posteriorFrom(nb, s.dists)
		out[i] = p
		if dk2 != nil {
			dk2[i] = kd2
		}
	}
}

// AppendDelta reports whether this model is an append-only extension of
// old — same K, dims, and bit-identical scales, with old's scaled training
// rows and labels a pointwise-equal prefix of this model's, and old already
// holding at least K rows (so the effective neighborhood size is K for
// both). When it is, the returned slice holds exactly the newly appended
// scaled rows, and the exact skip rule applies: a query's k-NN set — hence
// its posterior and d_k — is unchanged unless some new row lies strictly
// within the query's old d_k (ties lose to the incumbent's smaller index).
func (c *DWKNN) AppendDelta(old *DWKNN) ([][]float64, bool) {
	if old == nil || !c.fitted || !old.fitted {
		return nil, false
	}
	if c.K != old.K || c.dims != old.dims {
		return nil, false
	}
	if len(old.x) < old.K || len(old.x) > len(c.x) {
		return nil, false
	}
	for j := range c.scales {
		if c.scales[j] != old.scales[j] {
			return nil, false
		}
	}
	for i, row := range old.x {
		if old.y[i] != c.y[i] {
			return nil, false
		}
		nrow := c.x[i]
		for j := range row {
			if row[j] != nrow[j] {
				return nil, false
			}
		}
	}
	return c.x[len(old.x):], true
}

// DirtyCells scans the block and appends to out the indices of centers for
// which some row of newRows (scaled space, as returned by AppendDelta) lies
// strictly within the center's recorded k-th-neighbor squared distance
// dk2[i] — exactly the centers whose k-NN set can have changed. The
// comparison uses the same scaled-distance arithmetic as scoring, so the
// dirty test is exact, not approximate.
func (c *DWKNN) DirtyCells(blk *kernel.Block, newRows [][]float64, dk2 []float64, out []int) ([]int, error) {
	if !c.fitted {
		return nil, ErrNotFitted
	}
	if blk.Dims != c.dims {
		return nil, fmt.Errorf("learn: block has %d dims, model has %d", blk.Dims, c.dims)
	}
	if len(dk2) != blk.N {
		return nil, fmt.Errorf("learn: %d dk² entries for %d block centers", len(dk2), blk.N)
	}
	s := getDWKNNScratch(c)
	defer putDWKNNScratch(s)
	for base := 0; base < blk.N; base += dwknnStrip {
		w := blk.N - base
		if w > dwknnStrip {
			w = dwknnStrip
		}
		if cap(s.qs) < c.dims*w {
			s.qs = make([]float64, c.dims*dwknnStrip)
		}
		if cap(s.dist2) < w {
			s.dist2 = make([]float64, dwknnStrip)
		}
		if cap(s.mark) < w {
			s.mark = make([]bool, dwknnStrip)
		}
		qs := s.qs[:c.dims*w]
		mark := s.mark[:w]
		clear(mark)
		for d := 0; d < c.dims; d++ {
			kernel.ScaleInto(qs[d*w:d*w+w], blk.Col(d)[base:base+w], c.scales[d])
		}
		for _, row := range newRows {
			dr := s.dist2[:w]
			clear(dr)
			for d, v := range row {
				kernel.AddSquaredDiff(dr, qs[d*w:d*w+w], v)
			}
			for i := 0; i < w; i++ {
				if dr[i] < dk2[base+i] {
					mark[i] = true
				}
			}
		}
		for i := 0; i < w; i++ {
			if mark[i] {
				out = append(out, base+i)
			}
		}
	}
	return out, nil
}

// effectiveScales resolves the scaling vector used for the current fit.
func (c *DWKNN) effectiveScales(X [][]float64, dims int) ([]float64, error) {
	if c.Scales != nil {
		if len(c.Scales) != dims {
			return nil, fmt.Errorf("learn: %d scales for %d dims", len(c.Scales), dims)
		}
		out := make([]float64, dims)
		for j, s := range c.Scales {
			if s <= 0 {
				return nil, fmt.Errorf("learn: scale %d = %g must be positive", j, s)
			}
			out[j] = s
		}
		return out, nil
	}
	// Derive from training extent; degenerate dimensions get scale 1.
	out := make([]float64, dims)
	for j := 0; j < dims; j++ {
		lo, hi := X[0][j], X[0][j]
		for _, row := range X {
			if row[j] < lo {
				lo = row[j]
			}
			if row[j] > hi {
				hi = row[j]
			}
		}
		if hi > lo {
			out[j] = hi - lo
		} else {
			out[j] = 1
		}
	}
	return out, nil
}
