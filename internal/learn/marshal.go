package learn

import (
	"encoding/json"
	"fmt"
)

// Model serialization for the remote shard transport: a coordinator ships
// the fitted classifier to shard workers once per scoring pass, and the
// worker evaluates it against its owned symbolic index points. The format
// is a JSON envelope {"kind": ..., "spec": ...} over the fitted state.
// encoding/json emits float64 with the shortest representation that parses
// back to the same bits, so a round-tripped model produces bit-identical
// posteriors — the property the remote/local parity guarantee rests on.

// Model kind tags recorded in the envelope.
const (
	kindLogistic   = "logistic"
	kindDWKNN      = "dwknn"
	kindGaussianNB = "gaussian_nb"
	kindCommittee  = "committee"
)

// modelEnvelope is the wire form of a fitted classifier.
type modelEnvelope struct {
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec"`
}

// logisticSpec is the fitted state of a Logistic model.
type logisticSpec struct {
	W    []float64 `json:"w"`
	B    float64   `json:"b"`
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
	Dims int       `json:"dims"`
}

// dwknnSpec is the fitted state of a DWKNN model. X holds the scaled
// training rows (the form distance computation consumes), so evaluation
// after a round trip walks exactly the same floats.
type dwknnSpec struct {
	K      int         `json:"k"`
	X      [][]float64 `json:"x"`
	Y      []int       `json:"y"`
	Scales []float64   `json:"scales"`
	Dims   int         `json:"dims"`
}

// gaussianNBSpec is the fitted state of a GaussianNB model.
type gaussianNBSpec struct {
	Dims     int          `json:"dims"`
	Mean     [2][]float64 `json:"mean"`
	Variance [2][]float64 `json:"variance"`
	LogPrior [2]float64   `json:"log_prior"`
}

// committeeSpec is the fitted state of a Committee: each member carries its
// own nested envelope.
type committeeSpec struct {
	Members []json.RawMessage `json:"members"`
}

// MarshalModel serializes a fitted classifier for transport to a shard
// worker. Unfitted models and classifier types outside this package are
// rejected — the wire format enumerates the known kinds.
func MarshalModel(c Classifier) ([]byte, error) {
	if c == nil {
		return nil, fmt.Errorf("learn: marshal nil classifier")
	}
	if !c.Fitted() {
		return nil, fmt.Errorf("learn: marshal unfitted classifier: %w", ErrNotFitted)
	}
	var (
		kind string
		spec any
	)
	switch m := c.(type) {
	case *Logistic:
		kind = kindLogistic
		spec = logisticSpec{W: m.w, B: m.b, Mean: m.mean, Std: m.std, Dims: m.dims}
	case *DWKNN:
		kind = kindDWKNN
		spec = dwknnSpec{K: m.K, X: m.x, Y: m.y, Scales: m.scales, Dims: m.dims}
	case *GaussianNB:
		kind = kindGaussianNB
		spec = gaussianNBSpec{Dims: m.dims, Mean: m.mean, Variance: m.variance, LogPrior: m.logPrior}
	case *Committee:
		members := make([]json.RawMessage, len(m.Members))
		for i, member := range m.Members {
			data, err := MarshalModel(member)
			if err != nil {
				return nil, fmt.Errorf("learn: committee member %d: %w", i, err)
			}
			members[i] = data
		}
		kind = kindCommittee
		spec = committeeSpec{Members: members}
	default:
		return nil, fmt.Errorf("learn: cannot marshal classifier type %T", c)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("learn: marshal %s spec: %w", kind, err)
	}
	return json.Marshal(modelEnvelope{Kind: kind, Spec: raw})
}

// UnmarshalModel reconstructs a fitted classifier from MarshalModel output.
// The returned model is immediately usable for posterior evaluation and is
// read-only safe for concurrent scoring, like any fitted classifier.
func UnmarshalModel(data []byte) (Classifier, error) {
	var env modelEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("learn: parse model envelope: %w", err)
	}
	switch env.Kind {
	case kindLogistic:
		var s logisticSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, fmt.Errorf("learn: parse logistic spec: %w", err)
		}
		if s.Dims < 1 || len(s.W) != s.Dims || len(s.Mean) != s.Dims || len(s.Std) != s.Dims {
			return nil, fmt.Errorf("learn: logistic spec shape mismatch (dims %d, w %d, mean %d, std %d)", s.Dims, len(s.W), len(s.Mean), len(s.Std))
		}
		return &Logistic{w: s.W, b: s.B, mean: s.Mean, std: s.Std, dims: s.Dims, fitted: true}, nil
	case kindDWKNN:
		var s dwknnSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, fmt.Errorf("learn: parse dwknn spec: %w", err)
		}
		if s.K < 1 || s.Dims < 1 || len(s.X) == 0 || len(s.X) != len(s.Y) || len(s.Scales) != s.Dims {
			return nil, fmt.Errorf("learn: dwknn spec shape mismatch (k %d, dims %d, %d rows, %d labels, %d scales)", s.K, s.Dims, len(s.X), len(s.Y), len(s.Scales))
		}
		for i, row := range s.X {
			if len(row) != s.Dims {
				return nil, fmt.Errorf("learn: dwknn spec row %d has %d dims, want %d", i, len(row), s.Dims)
			}
		}
		return &DWKNN{K: s.K, x: s.X, y: s.Y, scales: s.Scales, dims: s.Dims, fitted: true}, nil
	case kindGaussianNB:
		var s gaussianNBSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, fmt.Errorf("learn: parse gaussian_nb spec: %w", err)
		}
		for cls := 0; cls < 2; cls++ {
			if s.Dims < 1 || len(s.Mean[cls]) != s.Dims || len(s.Variance[cls]) != s.Dims {
				return nil, fmt.Errorf("learn: gaussian_nb spec shape mismatch (dims %d, class %d: mean %d, variance %d)", s.Dims, cls, len(s.Mean[cls]), len(s.Variance[cls]))
			}
		}
		return &GaussianNB{dims: s.Dims, mean: s.Mean, variance: s.Variance, logPrior: s.LogPrior, fitted: true}, nil
	case kindCommittee:
		var s committeeSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, fmt.Errorf("learn: parse committee spec: %w", err)
		}
		if len(s.Members) < 2 {
			return nil, fmt.Errorf("learn: committee spec has %d members, want at least 2", len(s.Members))
		}
		members := make([]Classifier, len(s.Members))
		for i, raw := range s.Members {
			m, err := UnmarshalModel(raw)
			if err != nil {
				return nil, fmt.Errorf("learn: committee member %d: %w", i, err)
			}
			members[i] = m
		}
		return &Committee{Members: members, fitted: true}, nil
	default:
		return nil, fmt.Errorf("learn: unknown model kind %q", env.Kind)
	}
}
