package learn

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/uei-db/uei/internal/kernel"
)

// topK ranks query indices by the uncertainty-sampling comparator (higher
// uncertainty first, lower index breaking ties) — the same total order the
// core layer uses to pick the next region.
func topK(unc []float64, k int) []int {
	idx := make([]int, len(unc))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if unc[idx[a]] != unc[idx[b]] {
			return unc[idx[a]] > unc[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// FuzzBlockParity is the cross-model scoring-mode agreement property: for
// a random dataset and query block, every classifier's columnar path —
// and, for DWKNN, the dirty-cell delta path — must reproduce the row
// path's posteriors bit for bit, and therefore the identical top-k
// selection. Query sets deliberately include duplicates (degenerate
// equidistant neighborhoods) and exact copies of training rows.
func FuzzBlockParity(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(2), uint16(300))
	f.Add(int64(42), uint8(7), uint8(5), uint16(1))
	f.Add(int64(99), uint8(60), uint8(3), uint16(513))
	f.Add(int64(7), uint8(4), uint8(0), uint16(17))
	f.Fuzz(func(t *testing.T, seed int64, nTrainRaw, dimsRaw uint8, nqRaw uint16) {
		dims := 1 + int(dimsRaw)%6
		nTrain := 6 + int(nTrainRaw)%60
		nq := 1 + int(nqRaw)%700
		rng := rand.New(rand.NewSource(seed))

		X := make([][]float64, nTrain)
		y := make([]int, nTrain)
		for i := range X {
			row := make([]float64, dims)
			for d := range row {
				row[d] = rng.NormFloat64() * 3
			}
			X[i] = row
			y[i] = rng.Intn(2)
		}
		// Both classes must appear for every model to fit.
		y[0], y[1] = 0, 1
		scales := make([]float64, dims)
		for d := range scales {
			scales[d] = 0.25 + rng.Float64()*4
		}

		com, err := NewCommittee(3, seed, func(i int) Classifier { return NewDWKNN(3+i, nil) })
		if err != nil {
			t.Fatal(err)
		}
		models := map[string]Classifier{
			"dwknn":     NewDWKNN(5, scales),
			"logistic":  NewLogistic(seed),
			"gnb":       NewGaussianNB(),
			"committee": com,
		}
		for name, m := range models {
			if err := m.Fit(X, y); err != nil {
				t.Fatalf("fit %s: %v", name, err)
			}
		}

		Q := make([][]float64, nq)
		for i := range Q {
			switch {
			case i > 0 && rng.Intn(8) == 0:
				// Duplicate an earlier query: equidistant/tied neighborhoods.
				Q[i] = Q[rng.Intn(i)]
			case rng.Intn(8) == 0:
				// Exact training row: zero distance to a labeled point.
				Q[i] = X[rng.Intn(nTrain)]
			default:
				q := make([]float64, dims)
				for d := range q {
					q[d] = rng.NormFloat64() * 4
				}
				Q[i] = q
			}
		}
		blk := kernel.Pack(Q)
		ctx := context.Background()

		for name, m := range models {
			want := make([]float64, nq)
			if err := m.(BatchClassifier).BatchPosterior(Q, want); err != nil {
				t.Fatalf("%s row: %v", name, err)
			}
			got := make([]float64, nq)
			if err := BlockPosteriorsInto(ctx, m, blk, 0, nq, got); err != nil {
				t.Fatalf("%s block: %v", name, err)
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s query %d: block %v != row %v", name, i, got[i], want[i])
				}
			}
			wantU := make([]float64, nq)
			gotU := make([]float64, nq)
			for i := range want {
				wantU[i] = math.Min(want[i], 1-want[i])
				gotU[i] = math.Min(got[i], 1-got[i])
			}
			wt, gt := topK(wantU, 5), topK(gotU, 5)
			for i := range wt {
				if wt[i] != gt[i] {
					t.Fatalf("%s: top-k rank %d differs: row %d vs block %d", name, i, wt[i], gt[i])
				}
			}
		}

		// DWKNN mode 3: delta rescoring. Fit an append-only predecessor,
		// score it, then patch only the dirty cells — the patched vector
		// must equal a from-scratch pass under the current model.
		nOld := nTrain - 1 - rng.Intn(4)
		if nOld >= 5 {
			old := NewDWKNN(5, scales)
			if err := old.Fit(X[:nOld], y[:nOld]); err != nil {
				t.Fatal(err)
			}
			cur := models["dwknn"].(*DWKNN)
			newRows, ok := cur.AppendDelta(old)
			if !ok {
				t.Fatalf("AppendDelta rejected an append-only refit (%d -> %d rows)", nOld, nTrain)
			}
			p := make([]float64, nq)
			dk2 := make([]float64, nq)
			if err := old.BlockPosteriorDK(blk, 0, nq, p, dk2); err != nil {
				t.Fatal(err)
			}
			dirty, err := cur.DirtyCells(blk, newRows, dk2, nil)
			if err != nil {
				t.Fatal(err)
			}
			sub := make([]float64, len(dirty))
			subDK := make([]float64, len(dirty))
			if err := cur.BlockPosteriorDKAt(blk, dirty, sub, subDK); err != nil {
				t.Fatal(err)
			}
			for i, c := range dirty {
				p[c], dk2[c] = sub[i], subDK[i]
			}
			full := make([]float64, nq)
			fullDK := make([]float64, nq)
			if err := cur.BlockPosteriorDK(blk, 0, nq, full, fullDK); err != nil {
				t.Fatal(err)
			}
			for i := range full {
				if math.Float64bits(p[i]) != math.Float64bits(full[i]) {
					t.Fatalf("delta query %d: patched %v != full %v", i, p[i], full[i])
				}
				if math.Float64bits(dk2[i]) != math.Float64bits(fullDK[i]) {
					t.Fatalf("delta query %d: patched dk² %v != full %v", i, dk2[i], fullDK[i])
				}
			}
		}
	})
}
