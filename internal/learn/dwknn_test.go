package learn

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDWKNNUnfitted(t *testing.T) {
	c := NewDWKNN(3, nil)
	if c.Fitted() {
		t.Error("fresh model claims fitted")
	}
	if _, err := c.PosteriorPositive([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
}

func TestDWKNNFitValidation(t *testing.T) {
	c := NewDWKNN(3, nil)
	if err := c.Fit(nil, nil); err == nil {
		t.Error("empty set should fail")
	}
	if err := c.Fit([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := c.Fit([][]float64{{1}, {1, 2}}, []int{0, 1}); err == nil {
		t.Error("ragged rows should fail")
	}
	if err := c.Fit([][]float64{{1}}, []int{5}); err == nil {
		t.Error("non-binary label should fail")
	}
	bad := NewDWKNN(3, []float64{1, 2}) // wrong scale arity
	if err := bad.Fit([][]float64{{1}}, []int{1}); err == nil {
		t.Error("scale arity mismatch should fail")
	}
	neg := NewDWKNN(3, []float64{-1})
	if err := neg.Fit([][]float64{{1}}, []int{1}); err == nil {
		t.Error("negative scale should fail")
	}
	zero := &DWKNN{K: -1}
	if err := zero.Fit([][]float64{{1}}, []int{1}); err == nil {
		t.Error("negative k should fail")
	}
}

func TestDWKNNDefaultK(t *testing.T) {
	if NewDWKNN(0, nil).K != 7 {
		t.Error("default k should be 7")
	}
}

// TestDWKNNDualWeightsHandComputed verifies the Gou et al. weight formula on
// a 1-D example worked out by hand.
//
// Training points at 0(+), 1(+), 2(-), 10(-); query at 0; k = 3.
// Neighbors: d1=0 (pos), d2=1 (pos), d3=2 (neg).
// w1 = (2-0)/(2-0) * (2+0)/(2+0) = 1
// w2 = (2-1)/(2-0) * (2+0)/(2+1) = 0.5 * 2/3 = 1/3
// w3 = 0
// P(pos) = (1 + 1/3) / (1 + 1/3 + 0) = 1.
func TestDWKNNDualWeightsHandComputed(t *testing.T) {
	c := NewDWKNN(3, []float64{1})
	X := [][]float64{{0}, {1}, {2}, {10}}
	y := []int{1, 1, 0, 0}
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p, err := c.PosteriorPositive([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1.0) > 1e-12 {
		t.Errorf("P(pos|0) = %g, want 1", p)
	}

	// Query at 1.5: neighbors 1(+,d=0.5), 2(-,d=0.5), 0(+,d=1.5).
	// d1=d2=0.5, d3=1.5.
	// w1 = (1.5-0.5)/(1.5-0.5) * (1.5+0.5)/(1.5+0.5) = 1
	// w2 = 1 (same distance)
	// w3 = (1.5-1.5)/1 * ... = 0
	// P(pos) = (w1 for +1 at distance .5 ... both 0.5-distance neighbors
	// are one pos one neg) = 1/2.
	p, err = c.PosteriorPositive([]float64{1.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P(pos|1.5) = %g, want 0.5", p)
	}
}

func TestDWKNNEquidistantNeighbors(t *testing.T) {
	// All neighbors at identical distance: every weight is 1, posterior is
	// the plain class fraction.
	c := NewDWKNN(4, []float64{1, 1})
	X := [][]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	y := []int{1, 1, 1, 0}
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p, err := c.PosteriorPositive([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.75) > 1e-12 {
		t.Errorf("P = %g, want 0.75", p)
	}
}

func TestDWKNNKLargerThanTrainingSet(t *testing.T) {
	c := NewDWKNN(50, nil)
	if err := c.Fit([][]float64{{0}, {1}}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PosteriorPositive([]float64{0.4}); err != nil {
		t.Fatal(err)
	}
}

func TestDWKNNDimsMismatchQuery(t *testing.T) {
	c := NewDWKNN(1, nil)
	c.Fit([][]float64{{0, 0}}, []int{1})
	if _, err := c.PosteriorPositive([]float64{0}); err == nil {
		t.Error("query dims mismatch should fail")
	}
}

func TestDWKNNScalingMatters(t *testing.T) {
	// Dimension 0 spans [0, 1000], dimension 1 spans [0, 1]. The query is
	// nearest to the positive point only when dimension 1 is rescaled.
	X := [][]float64{{0, 0}, {10, 1}}
	y := []int{1, 0}
	query := []float64{9, 0.05}

	unscaled := NewDWKNN(1, []float64{1, 1})
	unscaled.Fit(X, y)
	pu, _ := unscaled.PosteriorPositive(query)

	scaled := NewDWKNN(1, []float64{1000, 1})
	scaled.Fit(X, y)
	ps, _ := scaled.PosteriorPositive(query)

	if pu != 0 {
		t.Errorf("unscaled should pick the negative neighbor, P=%g", pu)
	}
	if ps != 1 {
		t.Errorf("scaled should pick the positive neighbor, P=%g", ps)
	}
}

func TestDWKNNLearnsBoxRegion(t *testing.T) {
	// End-to-end sanity: with a few hundred labels, DWKNN should separate
	// an axis-aligned box from background far better than chance.
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []int
	for i := 0; i < 600; i++ {
		p := []float64{rng.Float64() * 10, rng.Float64() * 10}
		label := 0
		if p[0] > 4 && p[0] < 6 && p[1] > 4 && p[1] < 6 {
			label = 1
		}
		X = append(X, p)
		y = append(y, label)
	}
	c := NewDWKNN(7, []float64{10, 10})
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for i := 0; i < 500; i++ {
		p := []float64{rng.Float64() * 10, rng.Float64() * 10}
		want := 0
		if p[0] > 4 && p[0] < 6 && p[1] > 4 && p[1] < 6 {
			want = 1
		}
		got, err := Predict(c, p)
		if err != nil {
			t.Fatal(err)
		}
		if got == want {
			correct++
		}
		total++
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("holdout accuracy %.3f < 0.9", acc)
	}
}

func TestUncertaintyPeaksAtHalf(t *testing.T) {
	c := NewDWKNN(2, []float64{1})
	c.Fit([][]float64{{0}, {1}}, []int{0, 1})
	// Exactly between one positive and one negative neighbor.
	u, err := Uncertainty(c, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.5) > 1e-12 {
		t.Errorf("u = %g, want 0.5", u)
	}
	// On top of the negative point, certainty should be high (u small).
	u0, _ := Uncertainty(c, []float64{0})
	if u0 >= u {
		t.Errorf("uncertainty at a labeled point (%g) should be below the midpoint (%g)", u0, u)
	}
}

func TestQuickDWKNNPosteriorInUnitInterval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		d := 1 + rng.Intn(4)
		X := make([][]float64, n)
		y := make([]int, n)
		for i := range X {
			X[i] = make([]float64, d)
			for j := range X[i] {
				X[i][j] = rng.NormFloat64() * 100
			}
			y[i] = rng.Intn(2)
		}
		c := NewDWKNN(1+rng.Intn(9), nil)
		if err := c.Fit(X, y); err != nil {
			return false
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.NormFloat64() * 100
		}
		p, err := c.PosteriorPositive(q)
		if err != nil {
			return false
		}
		u, err := Uncertainty(c, q)
		if err != nil {
			return false
		}
		return p >= 0 && p <= 1 && u >= 0 && u <= 0.5 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickDWKNNSelfQueryAgreesWithLabel(t *testing.T) {
	// Property: querying exactly at a training point with k=1 returns that
	// point's label with certainty (ties broken by index determinism means
	// duplicated coordinates may disagree, so generate distinct points).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		X := make([][]float64, n)
		y := make([]int, n)
		for i := range X {
			X[i] = []float64{float64(i) + rng.Float64()*0.25} // strictly increasing
			y[i] = rng.Intn(2)
		}
		c := NewDWKNN(1, []float64{1})
		if err := c.Fit(X, y); err != nil {
			return false
		}
		i := rng.Intn(n)
		p, err := c.PosteriorPositive(X[i])
		if err != nil {
			return false
		}
		return (y[i] == 1) == (p >= 0.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
