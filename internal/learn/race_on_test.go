//go:build race

package learn

// raceEnabled reports whether the race detector is compiled in. Under it
// sync.Pool deliberately drops items to expose reuse races, so
// allocation-count assertions are not meaningful.
const raceEnabled = true
