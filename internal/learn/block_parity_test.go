package learn

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/uei-db/uei/internal/kernel"
)

func parityModels(t *testing.T, rng *rand.Rand, n, dims int) map[string]Classifier {
	t.Helper()
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, dims)
		for d := range row {
			row[d] = rng.NormFloat64() * 3
		}
		X[i] = row
		y[i] = i % 2
	}
	scales := make([]float64, dims)
	for d := range scales {
		scales[d] = 0.5 + rng.Float64()*4
	}
	com, err := NewCommittee(3, 7, func(i int) Classifier { return NewDWKNN(3+i, nil) })
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]Classifier{
		"dwknn":      NewDWKNN(7, scales),
		"dwknn-auto": NewDWKNN(5, nil),
		"logistic":   NewLogistic(11),
		"gnb":        NewGaussianNB(),
		"committee":  com,
	}
	for name, m := range models {
		if err := m.Fit(X, y); err != nil {
			t.Fatalf("fit %s: %v", name, err)
		}
	}
	return models
}

// Every model's block path must agree bit-for-bit with its row path, on
// query counts that exercise strip boundaries and unroll tails.
func TestBlockPosteriorBitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, nq := range []int{1, 3, 511, 512, 513, 1100} {
		models := parityModels(t, rng, 60, 4)
		Q := make([][]float64, nq)
		for i := range Q {
			q := make([]float64, 4)
			for d := range q {
				q[d] = rng.NormFloat64() * 5
			}
			Q[i] = q
		}
		blk := kernel.Pack(Q)
		for name, m := range models {
			want := make([]float64, nq)
			if err := m.(BatchClassifier).BatchPosterior(Q, want); err != nil {
				t.Fatalf("%s row: %v", name, err)
			}
			got := make([]float64, nq)
			if err := BlockPosteriorsInto(context.Background(), m, blk, 0, nq, got); err != nil {
				t.Fatalf("%s block: %v", name, err)
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s nq=%d query %d: block %v != row %v", name, nq, i, got[i], want[i])
				}
			}
			// Sub-range scoring must agree with the full pass.
			if nq > 10 {
				lo, hi := 3, nq-2
				sub := make([]float64, hi-lo)
				if err := BlockPosteriorsInto(context.Background(), m, blk, lo, hi, sub); err != nil {
					t.Fatalf("%s sub: %v", name, err)
				}
				for i := range sub {
					if math.Float64bits(sub[i]) != math.Float64bits(want[lo+i]) {
						t.Fatalf("%s sub-range query %d mismatch", name, lo+i)
					}
				}
			}
		}
	}
}

// The degenerate all-equidistant DWKNN weight case (dk == d1 forces unit
// weights) and tiny training sets (k clamped to len(x)) must survive the
// block path.
func TestBlockPosteriorDegenerateDWKNN(t *testing.T) {
	// All training points on a unit circle; queries at the center are
	// exactly equidistant from every one of them.
	n := 8
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a := 2 * math.Pi * float64(i) / float64(n)
		X[i] = []float64{math.Cos(a), math.Sin(a)}
		y[i] = i % 2
	}
	for _, k := range []int{3, 7, 20} { // 20 > n: k clamps to len(x)
		dw := NewDWKNN(k, []float64{1, 1})
		if err := dw.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		Q := [][]float64{{0, 0}, {0.001, 0}, {0, 0}, {5, 5}}
		blk := kernel.Pack(Q)
		want := make([]float64, len(Q))
		if err := dw.BatchPosterior(Q, want); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, len(Q))
		dk2 := make([]float64, len(Q))
		if err := dw.BlockPosteriorDK(blk, 0, len(Q), got, dk2); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("k=%d query %d: %v != %v", k, i, got[i], want[i])
			}
		}
		// Center queries: every neighbor at distance 1 → dk² == 1.
		if dk2[0] != 1 || dk2[2] != 1 {
			t.Fatalf("k=%d: center dk² = %v, want 1", k, dk2[0])
		}
	}
}

// AppendDelta must accept exactly the append-only extensions and reject
// everything else; DirtyCells must flag every center whose posterior or
// dk² can change — verified against a full rescore.
func TestAppendDeltaDirtyCellsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	scales := []float64{2, 0.5, 1.5}
	mkRows := func(n int) ([][]float64, []int) {
		X := make([][]float64, n)
		y := make([]int, n)
		for i := range X {
			row := make([]float64, 3)
			for d := range row {
				row[d] = rng.NormFloat64() * 4
			}
			X[i] = row
			y[i] = rng.Intn(2)
		}
		return X, y
	}
	for trial := 0; trial < 30; trial++ {
		nOld := 10 + rng.Intn(40)
		nNew := 1 + rng.Intn(6)
		X, y := mkRows(nOld + nNew)
		old := NewDWKNN(7, scales)
		if err := old.Fit(X[:nOld], y[:nOld]); err != nil {
			t.Fatal(err)
		}
		cur := NewDWKNN(7, scales)
		if err := cur.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		newRows, ok := cur.AppendDelta(old)
		if !ok || len(newRows) != nNew {
			t.Fatalf("trial %d: AppendDelta ok=%v rows=%d want %d", trial, ok, len(newRows), nNew)
		}

		// Score a center set under the old model, then check the dirty rule
		// against a full rescore under the new model.
		nc := 200
		C := make([][]float64, nc)
		for i := range C {
			c := make([]float64, 3)
			for d := range c {
				c[d] = rng.NormFloat64() * 4
			}
			C[i] = c
		}
		blk := kernel.Pack(C)
		oldP := make([]float64, nc)
		oldDK := make([]float64, nc)
		if err := old.BlockPosteriorDK(blk, 0, nc, oldP, oldDK); err != nil {
			t.Fatal(err)
		}
		newP := make([]float64, nc)
		newDK := make([]float64, nc)
		if err := cur.BlockPosteriorDK(blk, 0, nc, newP, newDK); err != nil {
			t.Fatal(err)
		}
		dirty, err := cur.DirtyCells(blk, newRows, oldDK, nil)
		if err != nil {
			t.Fatal(err)
		}
		inDirty := make(map[int]bool, len(dirty))
		for _, c := range dirty {
			inDirty[c] = true
		}
		for i := 0; i < nc; i++ {
			changed := math.Float64bits(oldP[i]) != math.Float64bits(newP[i]) ||
				math.Float64bits(oldDK[i]) != math.Float64bits(newDK[i])
			if changed && !inDirty[i] {
				t.Fatalf("trial %d: center %d changed but not flagged dirty", trial, i)
			}
			if !inDirty[i] {
				// Exactness: clean centers keep identical scores and bounds.
				if math.Float64bits(oldP[i]) != math.Float64bits(newP[i]) {
					t.Fatalf("trial %d: clean center %d posterior drifted", trial, i)
				}
			}
		}

		// Rejections: different K, different scales, mutated prefix, label flip.
		other := NewDWKNN(5, scales)
		if err := other.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if _, ok := other.AppendDelta(old); ok {
			t.Fatal("K mismatch accepted")
		}
		s2 := append([]float64(nil), scales...)
		s2[0] = 3
		resc := NewDWKNN(7, s2)
		if err := resc.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if _, ok := resc.AppendDelta(old); ok {
			t.Fatal("scale drift accepted")
		}
		yFlip := append([]int(nil), y...)
		yFlip[0] = 1 - yFlip[0]
		flip := NewDWKNN(7, scales)
		if err := flip.Fit(X, yFlip); err != nil {
			t.Fatal(err)
		}
		if _, ok := flip.AppendDelta(old); ok {
			t.Fatal("label flip accepted")
		}
		if _, ok := old.AppendDelta(cur); ok {
			t.Fatal("shrinking set accepted")
		}
	}
}

// A model fitted with fewer rows than K must refuse AppendDelta (its
// effective neighborhood grows with every new row, so no skip is exact).
func TestAppendDeltaSmallTrainingSet(t *testing.T) {
	scales := []float64{1, 1}
	X := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []int{0, 1, 0, 1, 0}
	old := NewDWKNN(7, scales)
	if err := old.Fit(X[:3], y[:3]); err != nil { // 3 < K=7
		t.Fatal(err)
	}
	cur := NewDWKNN(7, scales)
	if err := cur.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.AppendDelta(old); ok {
		t.Fatal("AppendDelta accepted an under-K base model")
	}
}
