package learn

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// boxTrainingSet builds a labeled 2-D set where the positive class is a box.
func boxTrainingSet(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		p := []float64{rng.Float64() * 10, rng.Float64() * 10}
		X[i] = p
		if p[0] > 3 && p[0] < 7 && p[1] > 3 && p[1] < 7 {
			y[i] = 1
		}
	}
	return X, y
}

// linearTrainingSet builds a labeled set separable by a hyperplane.
func linearTrainingSet(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		p := []float64{rng.NormFloat64(), rng.NormFloat64()}
		X[i] = p
		if p[0]+p[1] > 0 {
			y[i] = 1
		}
	}
	return X, y
}

func TestGaussianNBUnfitted(t *testing.T) {
	c := NewGaussianNB()
	if c.Fitted() {
		t.Error("fresh model claims fitted")
	}
	if _, err := c.PosteriorPositive([]float64{0}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
}

func TestGaussianNBNeedsBothClasses(t *testing.T) {
	c := NewGaussianNB()
	if err := c.Fit([][]float64{{0}, {1}}, []int{1, 1}); err == nil {
		t.Error("single-class fit should fail")
	}
}

func TestGaussianNBSeparatesGaussians(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			X = append(X, []float64{rng.NormFloat64() - 3})
			y = append(y, 0)
		} else {
			X = append(X, []float64{rng.NormFloat64() + 3})
			y = append(y, 1)
		}
	}
	c := NewGaussianNB()
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pLow, _ := c.PosteriorPositive([]float64{-3})
	pHigh, _ := c.PosteriorPositive([]float64{3})
	if pLow > 0.1 || pHigh < 0.9 {
		t.Errorf("posteriors not separated: P(+|-3)=%g, P(+|3)=%g", pLow, pHigh)
	}
	// Near the midpoint, uncertainty should be comparatively high.
	uMid, _ := Uncertainty(c, []float64{0})
	uFar, _ := Uncertainty(c, []float64{5})
	if uMid <= uFar {
		t.Errorf("uncertainty should peak near the boundary: mid=%g far=%g", uMid, uFar)
	}
}

func TestGaussianNBDegenerateVariance(t *testing.T) {
	// Constant feature must not produce NaN posteriors.
	c := NewGaussianNB()
	if err := c.Fit([][]float64{{1, 5}, {2, 5}, {3, 5}}, []int{0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	p, err := c.PosteriorPositive([]float64{2, 5})
	if err != nil || math.IsNaN(p) {
		t.Fatalf("posterior = %g, err = %v", p, err)
	}
}

func TestGaussianNBQueryDims(t *testing.T) {
	c := NewGaussianNB()
	c.Fit([][]float64{{0, 0}, {1, 1}}, []int{0, 1})
	if _, err := c.PosteriorPositive([]float64{0}); err == nil {
		t.Error("dims mismatch should fail")
	}
}

func TestLogisticUnfitted(t *testing.T) {
	c := NewLogistic(1)
	if c.Fitted() {
		t.Error("fresh model claims fitted")
	}
	if _, err := c.PosteriorPositive([]float64{0}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
}

func TestLogisticLearnsLinearBoundary(t *testing.T) {
	X, y := linearTrainingSet(500, 3)
	c := NewLogistic(7)
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := linearTrainingSet(300, 4)
	correct := 0
	for i, x := range Xt {
		got, err := Predict(c, x)
		if err != nil {
			t.Fatal(err)
		}
		if got == yt[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(Xt)); acc < 0.93 {
		t.Errorf("holdout accuracy %.3f < 0.93", acc)
	}
}

func TestLogisticValidation(t *testing.T) {
	c := NewLogistic(1)
	c.L2 = -1
	if err := c.Fit([][]float64{{0}, {1}}, []int{0, 1}); err == nil {
		t.Error("negative L2 should fail")
	}
	c2 := NewLogistic(1)
	c2.Fit([][]float64{{0, 1}, {1, 0}}, []int{0, 1})
	if _, err := c2.PosteriorPositive([]float64{0}); err == nil {
		t.Error("dims mismatch should fail")
	}
}

func TestLogisticDeterministic(t *testing.T) {
	X, y := linearTrainingSet(120, 5)
	a := NewLogistic(42)
	b := NewLogistic(42)
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pa, _ := a.PosteriorPositive([]float64{0.3, -0.2})
	pb, _ := b.PosteriorPositive([]float64{0.3, -0.2})
	if pa != pb {
		t.Errorf("same seed, different posteriors: %g vs %g", pa, pb)
	}
}

func TestCommitteeConstruction(t *testing.T) {
	if _, err := NewCommittee(1, 0, func(int) Classifier { return NewGaussianNB() }); err == nil {
		t.Error("size 1 should fail")
	}
	if _, err := NewCommittee(3, 0, nil); err == nil {
		t.Error("nil factory should fail")
	}
	if _, err := NewCommittee(3, 0, func(int) Classifier { return nil }); err == nil {
		t.Error("nil member should fail")
	}
}

func TestCommitteeFitAndDisagreement(t *testing.T) {
	X, y := boxTrainingSet(400, 6)
	com, err := NewCommittee(5, 11, func(i int) Classifier {
		return NewDWKNN(5, []float64{10, 10})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := com.PosteriorPositive([]float64{5, 5}); !errors.Is(err, ErrNotFitted) {
		t.Error("unfitted committee should refuse predictions")
	}
	if err := com.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pIn, _ := com.PosteriorPositive([]float64{5, 5})
	pOut, _ := com.PosteriorPositive([]float64{0.5, 0.5})
	if pIn < 0.6 || pOut > 0.4 {
		t.Errorf("committee posteriors wrong: in=%g out=%g", pIn, pOut)
	}
	dBoundary, _ := com.VoteDisagreement([]float64{3, 5})
	if dBoundary < 0 || dBoundary > 0.5 {
		t.Errorf("disagreement out of range: %g", dBoundary)
	}
	dFar, _ := com.VoteDisagreement([]float64{0.1, 0.1})
	if dFar > 0.4 {
		t.Errorf("far-from-boundary disagreement suspiciously high: %g", dFar)
	}
}

func TestCommitteeNeedsBothClasses(t *testing.T) {
	com, _ := NewCommittee(3, 1, func(int) Classifier { return NewGaussianNB() })
	if err := com.Fit([][]float64{{0}, {1}}, []int{0, 0}); err == nil {
		t.Error("single-class committee fit should fail")
	}
}

func TestQuickAllModelsPosteriorBounds(t *testing.T) {
	models := map[string]func() Classifier{
		"dwknn":    func() Classifier { return NewDWKNN(5, nil) },
		"gnb":      func() Classifier { return NewGaussianNB() },
		"logistic": func() Classifier { return NewLogistic(3) },
	}
	for name, mk := range models {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 6 + rng.Intn(40)
			X := make([][]float64, n)
			y := make([]int, n)
			for i := range X {
				X[i] = []float64{rng.NormFloat64() * 50, rng.NormFloat64() * 50}
				y[i] = i % 2 // guarantee both classes
			}
			c := mk()
			if err := c.Fit(X, y); err != nil {
				return false
			}
			q := []float64{rng.NormFloat64() * 50, rng.NormFloat64() * 50}
			p, err := c.PosteriorPositive(q)
			if err != nil || math.IsNaN(p) || p < 0 || p > 1 {
				return false
			}
			u, err := Uncertainty(c, q)
			return err == nil && u >= 0 && u <= 0.5
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
