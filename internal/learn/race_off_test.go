//go:build !race

package learn

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
