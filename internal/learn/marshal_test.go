package learn

import (
	"math/rand"
	"strings"
	"testing"
)

// marshalTrainingSet builds a small two-class set with enough spread to fit
// every model type.
func marshalTrainingSet(t *testing.T) (X [][]float64, y []int, queries [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 60; i++ {
		base := 0.0
		label := ClassNegative
		if i%2 == 0 {
			base = 3.0
			label = ClassPositive
		}
		X = append(X, []float64{base + rng.NormFloat64(), base + rng.NormFloat64(), base + rng.NormFloat64()})
		y = append(y, label)
	}
	for i := 0; i < 40; i++ {
		queries = append(queries, []float64{rng.Float64() * 4, rng.Float64() * 4, rng.Float64() * 4})
	}
	return X, y, queries
}

func TestMarshalModelRoundTrip(t *testing.T) {
	X, y, queries := marshalTrainingSet(t)
	models := map[string]Classifier{
		"logistic":    NewLogistic(7),
		"dwknn":       NewDWKNN(5, nil),
		"gaussian_nb": NewGaussianNB(),
	}
	committee, err := NewCommittee(3, 9, func(i int) Classifier { return NewDWKNN(3, nil) })
	if err != nil {
		t.Fatal(err)
	}
	models["committee"] = committee

	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			if err := m.Fit(X, y); err != nil {
				t.Fatal(err)
			}
			data, err := MarshalModel(m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := UnmarshalModel(data)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Fitted() {
				t.Fatal("round-tripped model reports unfitted")
			}
			// Posteriors must round-trip bit-exactly: the remote scoring
			// path's parity with local scoring depends on it.
			for i, q := range queries {
				want, err := m.PosteriorPositive(q)
				if err != nil {
					t.Fatal(err)
				}
				have, err := got.PosteriorPositive(q)
				if err != nil {
					t.Fatal(err)
				}
				if want != have {
					t.Fatalf("query %d: posterior %v after round trip, want %v (bit-exact)", i, have, want)
				}
			}
			// A second marshal of the reconstructed model is byte-stable.
			again, err := MarshalModel(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(again) != string(data) {
				t.Fatal("marshal not stable across a round trip")
			}
		})
	}
}

func TestMarshalModelRejectsUnfitted(t *testing.T) {
	if _, err := MarshalModel(NewLogistic(1)); err == nil {
		t.Fatal("unfitted model should not marshal")
	}
	if _, err := MarshalModel(nil); err == nil {
		t.Fatal("nil model should not marshal")
	}
}

func TestUnmarshalModelRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"garbage":       `not json`,
		"unknown kind":  `{"kind":"svm","spec":{}}`,
		"shape":         `{"kind":"logistic","spec":{"w":[1],"mean":[1,2],"std":[1,2],"dims":2}}`,
		"empty dwknn":   `{"kind":"dwknn","spec":{"k":3,"x":[],"y":[],"scales":[],"dims":0}}`,
		"solo comittee": `{"kind":"committee","spec":{"members":[]}}`,
	}
	for name, raw := range cases {
		if _, err := UnmarshalModel([]byte(raw)); err == nil {
			t.Errorf("%s: malformed model unmarshalled without error", name)
		} else if !strings.Contains(err.Error(), "learn:") {
			t.Errorf("%s: error %v lacks package prefix", name, err)
		}
	}
}
