package learn

import (
	"context"
	"fmt"
	"sync"
)

// batchBlock is how many queries a batch scorer processes between context
// checks: small enough that cancellation lands within microseconds of CPU
// work, large enough that the check is free.
const batchBlock = 512

// BatchClassifier is implemented by classifiers with an optimized
// many-query posterior path. BatchPosterior must be read-only with respect
// to the model so disjoint shards can run concurrently; any scratch state
// must live on the call's stack (all classifiers in this package comply —
// after Fit they never mutate themselves).
type BatchClassifier interface {
	Classifier
	// BatchPosterior fills out[i] with P(y = ClassPositive | X[i]).
	// len(out) must equal len(X).
	BatchPosterior(X [][]float64, out []float64) error
}

// PosteriorsInto fills out[i] = P(positive|X[i]) serially, using the
// classifier's batch path when it has one and checking ctx between blocks.
// It is the single-shard building block of Posteriors.
func PosteriorsInto(ctx context.Context, c Classifier, X [][]float64, out []float64) error {
	if len(X) != len(out) {
		return fmt.Errorf("learn: %d queries but %d output slots", len(X), len(out))
	}
	bc, _ := c.(BatchClassifier)
	for lo := 0; lo < len(X); lo += batchBlock {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + batchBlock
		if hi > len(X) {
			hi = len(X)
		}
		if bc != nil {
			if err := bc.BatchPosterior(X[lo:hi], out[lo:hi]); err != nil {
				return err
			}
			continue
		}
		for i := lo; i < hi; i++ {
			p, err := c.PosteriorPositive(X[i])
			if err != nil {
				return err
			}
			out[i] = p
		}
	}
	return nil
}

// UncertaintiesInto fills out[i] with the least-confidence uncertainty
// min(p, 1-p) of X[i], serially (see PosteriorsInto).
func UncertaintiesInto(ctx context.Context, c Classifier, X [][]float64, out []float64) error {
	if err := PosteriorsInto(ctx, c, X, out); err != nil {
		return err
	}
	for i, p := range out {
		if p > 0.5 {
			out[i] = 1 - p
		}
	}
	return nil
}

// Posteriors fills out[i] = P(positive|X[i]) using up to workers goroutines
// over contiguous shards. Results are byte-identical to the serial path:
// each query's posterior is independent and lands in its own slot. Callers
// that already own a worker pool should shard themselves and call
// PosteriorsInto per shard instead.
func Posteriors(ctx context.Context, c Classifier, X [][]float64, out []float64, workers int) error {
	return parallelInto(ctx, X, out, workers, func(ctx context.Context, xs [][]float64, os []float64) error {
		return PosteriorsInto(ctx, c, xs, os)
	})
}

// Uncertainties is Posteriors for least-confidence uncertainties.
func Uncertainties(ctx context.Context, c Classifier, X [][]float64, out []float64, workers int) error {
	return parallelInto(ctx, X, out, workers, func(ctx context.Context, xs [][]float64, os []float64) error {
		return UncertaintiesInto(ctx, c, xs, os)
	})
}

// parallelInto shards X/out across workers goroutines. The first error by
// shard order wins, matching what a serial loop would have returned.
func parallelInto(ctx context.Context, X [][]float64, out []float64, workers int, fn func(context.Context, [][]float64, []float64) error) error {
	if len(X) != len(out) {
		return fmt.Errorf("learn: %d queries but %d output slots", len(X), len(out))
	}
	n := len(X)
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(ctx, X, out)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo := s * n / workers
		hi := (s + 1) * n / workers
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[s] = fn(ctx, X[lo:hi], out[lo:hi])
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
