package learn

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// fittedModels returns every classifier in the package, trained on the same
// box-shaped concept.
func fittedModels(t *testing.T) map[string]Classifier {
	t.Helper()
	X, y := boxTrainingSet(300, 7)
	qbc, err := NewCommittee(3, 31, func(i int) Classifier { return NewDWKNN(3+2*i, nil) })
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]Classifier{
		"dwknn":     NewDWKNN(7, nil),
		"gnb":       NewGaussianNB(),
		"logistic":  NewLogistic(37),
		"committee": qbc,
	}
	for name, m := range models {
		if err := m.Fit(X, y); err != nil {
			t.Fatalf("%s: Fit: %v", name, err)
		}
	}
	return models
}

func queryGrid(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	return X
}

// TestBatchPosteriorMatchesPointwise is the batch-path contract: for every
// classifier, BatchPosterior must return bit-identical posteriors to a loop
// over PosteriorPositive. The parallel scorer's determinism rests on this.
func TestBatchPosteriorMatchesPointwise(t *testing.T) {
	X := queryGrid(1000, 11)
	for name, m := range fittedModels(t) {
		bc, ok := m.(BatchClassifier)
		if !ok {
			t.Errorf("%s does not implement BatchClassifier", name)
			continue
		}
		got := make([]float64, len(X))
		if err := bc.BatchPosterior(X, got); err != nil {
			t.Fatalf("%s: BatchPosterior: %v", name, err)
		}
		for i, x := range X {
			want, err := m.PosteriorPositive(x)
			if err != nil {
				t.Fatalf("%s: PosteriorPositive: %v", name, err)
			}
			if got[i] != want {
				t.Fatalf("%s: query %d: batch %v != pointwise %v", name, i, got[i], want)
			}
		}
	}
}

// TestPosteriorsParallelParity: Posteriors with 1, 4, and 8 workers must be
// bit-identical — contiguous shards write disjoint slots of the same slice.
func TestPosteriorsParallelParity(t *testing.T) {
	X := queryGrid(2000, 13)
	ctx := context.Background()
	for name, m := range fittedModels(t) {
		serial := make([]float64, len(X))
		if err := Posteriors(ctx, m, X, serial, 1); err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		for _, w := range []int{4, 8} {
			par := make([]float64, len(X))
			if err := Posteriors(ctx, m, X, par, w); err != nil {
				t.Fatalf("%s: workers=%d: %v", name, w, err)
			}
			for i := range serial {
				if par[i] != serial[i] {
					t.Fatalf("%s: workers=%d: slot %d: %v != %v", name, w, i, par[i], serial[i])
				}
			}
		}
	}
}

// TestUncertaintiesFoldsPosterior checks min(p, 1-p) against Posteriors.
func TestUncertaintiesFoldsPosterior(t *testing.T) {
	X := queryGrid(500, 17)
	ctx := context.Background()
	m := fittedModels(t)["dwknn"]
	post := make([]float64, len(X))
	unc := make([]float64, len(X))
	if err := Posteriors(ctx, m, X, post, 4); err != nil {
		t.Fatal(err)
	}
	if err := Uncertainties(ctx, m, X, unc, 4); err != nil {
		t.Fatal(err)
	}
	for i, p := range post {
		want := p
		if p > 0.5 {
			want = 1 - p
		}
		if unc[i] != want {
			t.Fatalf("slot %d: uncertainty %v, posterior %v", i, unc[i], p)
		}
	}
}

// TestBatchCanceledContext: a pre-canceled context must surface as
// context.Canceled before any scoring happens.
func TestBatchCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := fittedModels(t)["gnb"]
	X := queryGrid(600, 19)
	out := make([]float64, len(X))
	if err := Posteriors(ctx, m, X, out, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}

// TestBatchUnfitted: the batch path must wrap ErrNotFitted like the
// pointwise path does.
func TestBatchUnfitted(t *testing.T) {
	X := queryGrid(10, 23)
	out := make([]float64, len(X))
	err := Posteriors(context.Background(), NewGaussianNB(), X, out, 2)
	if !errors.Is(err, ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
}

// TestBatchLengthMismatch rejects out slices of the wrong size.
func TestBatchLengthMismatch(t *testing.T) {
	m := fittedModels(t)["dwknn"]
	X := queryGrid(10, 29)
	if err := Posteriors(context.Background(), m, X, make([]float64, 9), 2); err == nil {
		t.Error("length mismatch accepted")
	}
}
