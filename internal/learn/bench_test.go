package learn

import (
	"math/rand"
	"testing"

	"github.com/uei-db/uei/internal/kernel"
)

func benchFixture(b testing.TB, nTrain, nQuery, dims int) ([][]float64, []int, [][]float64) {
	rng := rand.New(rand.NewSource(77))
	X := make([][]float64, nTrain)
	y := make([]int, nTrain)
	for i := range X {
		row := make([]float64, dims)
		for d := range row {
			row[d] = rng.NormFloat64() * 3
		}
		X[i] = row
		y[i] = i % 2
	}
	Q := make([][]float64, nQuery)
	for i := range Q {
		q := make([]float64, dims)
		for d := range q {
			q[d] = rng.NormFloat64() * 3
		}
		Q[i] = q
	}
	return X, y, Q
}

func benchModels(b testing.TB, X [][]float64, y []int) map[string]BatchClassifier {
	com, err := NewCommittee(3, 5, func(i int) Classifier { return NewDWKNN(5+i, nil) })
	if err != nil {
		b.Fatal(err)
	}
	models := map[string]BatchClassifier{
		"dwknn":     NewDWKNN(7, nil),
		"logistic":  NewLogistic(3),
		"gnb":       NewGaussianNB(),
		"committee": com,
	}
	for name, m := range models {
		if err := m.Fit(X, y); err != nil {
			b.Fatalf("fit %s: %v", name, err)
		}
	}
	return models
}

// BenchmarkBatchPosterior measures the row batch path per model. Run with
// -benchmem: DWKNN's pooled scratch makes the steady state allocation-free
// (asserted by TestBatchPosteriorZeroAlloc).
func BenchmarkBatchPosterior(b *testing.B) {
	X, y, Q := benchFixture(b, 100, 512, 4)
	for name, m := range benchModels(b, X, y) {
		b.Run(name, func(b *testing.B) {
			out := make([]float64, len(Q))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.BatchPosterior(Q, out); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(Q)*b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkBlockPosterior measures the columnar path per model over a
// packed block of the same queries.
func BenchmarkBlockPosterior(b *testing.B) {
	X, y, Q := benchFixture(b, 100, 512, 4)
	blk := kernel.Pack(Q)
	for name, m := range benchModels(b, X, y) {
		bm, ok := m.(BlockClassifier)
		if !ok {
			continue
		}
		b.Run(name, func(b *testing.B) {
			out := make([]float64, blk.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bm.BlockPosterior(blk, 0, blk.N, out); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(blk.N*b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// Steady-state batch scoring must not allocate: the scratch pools absorb
// per-call buffers after warmup. Averaged over runs so a stray GC clearing
// a pool cannot flake the assertion.
func TestBatchPosteriorZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items; allocation counts are meaningless")
	}
	X, y, Q := benchFixture(t, 100, 256, 4)
	blk := kernel.Pack(Q)
	out := make([]float64, len(Q))
	for name, m := range benchModels(t, X, y) {
		// Warm the pools.
		for i := 0; i < 3; i++ {
			if err := m.BatchPosterior(Q, out); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(50, func() {
			if err := m.BatchPosterior(Q, out); err != nil {
				t.Fatal(err)
			}
		})
		if avg >= 1 {
			t.Errorf("%s BatchPosterior: %.1f allocs/op, want amortized 0", name, avg)
		}
		bm, ok := m.(BlockClassifier)
		if !ok {
			continue
		}
		for i := 0; i < 3; i++ {
			if err := bm.BlockPosterior(blk, 0, blk.N, out); err != nil {
				t.Fatal(err)
			}
		}
		avg = testing.AllocsPerRun(50, func() {
			if err := bm.BlockPosterior(blk, 0, blk.N, out); err != nil {
				t.Fatal(err)
			}
		})
		if avg >= 1 {
			t.Errorf("%s BlockPosterior: %.1f allocs/op, want amortized 0", name, avg)
		}
	}
}
