package learn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/uei-db/uei/internal/kernel"
)

// Logistic is an L2-regularized logistic-regression classifier trained with
// mini-batch stochastic gradient descent. Features are standardized
// internally (z-scores from the training set) so the learning rate is scale
// free. It serves as the linear probabilistic model alternative to DWKNN;
// note that a single linear boundary cannot enclose a box-shaped interest
// region, so on the paper's workload it plateaus below k-NN — a useful
// contrast in the strategy/estimator ablations.
type Logistic struct {
	// Epochs is the number of passes over the training set (default 200).
	Epochs int
	// LearningRate is the initial SGD step (default 0.1, decayed 1/sqrt(t)).
	LearningRate float64
	// L2 is the ridge penalty (default 1e-4).
	L2 float64
	// Seed fixes the shuffling order for reproducibility.
	Seed int64

	w      []float64 // weights in standardized space
	b      float64
	mean   []float64
	std    []float64
	dims   int
	fitted bool
}

// NewLogistic returns a Logistic with default hyperparameters.
func NewLogistic(seed int64) *Logistic {
	return &Logistic{Epochs: 200, LearningRate: 0.1, L2: 1e-4, Seed: seed}
}

// Fit trains the model from scratch on the labeled set.
func (c *Logistic) Fit(X [][]float64, y []int) error {
	dims, err := checkTrainingSet(X, y)
	if err != nil {
		return err
	}
	epochs := c.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	lr := c.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	if c.L2 < 0 {
		return fmt.Errorf("learn: negative L2 penalty %g", c.L2)
	}

	mean := make([]float64, dims)
	std := make([]float64, dims)
	for _, row := range X {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(X))
	}
	for _, row := range X {
		for j, v := range row {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(X)))
		if std[j] == 0 {
			std[j] = 1
		}
	}

	// Standardize once up front.
	Z := make([][]float64, len(X))
	for i, row := range X {
		z := make([]float64, dims)
		for j, v := range row {
			z[j] = (v - mean[j]) / std[j]
		}
		Z[i] = z
	}

	w := make([]float64, dims)
	b := 0.0
	rng := rand.New(rand.NewSource(c.Seed))
	order := rng.Perm(len(Z))
	t := 1.0
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			step := lr / math.Sqrt(t)
			t++
			z := Z[i]
			pred := sigmoid(dot(w, z) + b)
			g := pred - float64(y[i])
			for j := range w {
				w[j] -= step * (g*z[j] + c.L2*w[j])
			}
			b -= step * g
		}
	}

	c.w, c.b = w, b
	c.mean, c.std = mean, std
	c.dims = dims
	c.fitted = true
	return nil
}

// Fitted reports whether Fit has succeeded.
func (c *Logistic) Fitted() bool { return c.fitted }

// PosteriorPositive returns sigmoid(w·z + b) for the standardized query.
func (c *Logistic) PosteriorPositive(x []float64) (float64, error) {
	if !c.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != c.dims {
		return 0, fmt.Errorf("learn: query has %d dims, model has %d", len(x), c.dims)
	}
	s := c.b
	for j, v := range x {
		s += c.w[j] * (v - c.mean[j]) / c.std[j]
	}
	return clampProb(sigmoid(s)), nil
}

// BatchPosterior implements BatchClassifier. Evaluation reads only the
// fitted weights, so the loop is safe on disjoint shards concurrently.
func (c *Logistic) BatchPosterior(X [][]float64, out []float64) error {
	if len(X) != len(out) {
		return fmt.Errorf("learn: %d queries but %d output slots", len(X), len(out))
	}
	for i, x := range X {
		p, err := c.PosteriorPositive(x)
		if err != nil {
			return err
		}
		out[i] = p
	}
	return nil
}

// BlockPosterior implements BlockClassifier: a standardized dot-product
// over the block's columns. Per point the accumulation runs over
// dimensions in ascending order with the scalar path's exact
// multiply-then-divide expression, so results are bit-identical to
// PosteriorPositive.
func (c *Logistic) BlockPosterior(blk *kernel.Block, lo, hi int, out []float64) error {
	if !c.fitted {
		return ErrNotFitted
	}
	if blk.Dims != c.dims {
		return fmt.Errorf("learn: block has %d dims, model has %d", blk.Dims, c.dims)
	}
	acc := out[:hi-lo]
	for i := range acc {
		acc[i] = c.b
	}
	for j := 0; j < c.dims; j++ {
		kernel.AxpyStandardized(acc, blk.Col(j)[lo:hi], c.w[j], c.mean[j], c.std[j])
	}
	for i, s := range acc {
		acc[i] = clampProb(sigmoid(s))
	}
	return nil
}

func sigmoid(v float64) float64 {
	// Guard the exponent to avoid overflow to Inf for extreme margins.
	if v > 35 {
		return 1
	}
	if v < -35 {
		return 0
	}
	return 1 / (1 + math.Exp(-v))
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
