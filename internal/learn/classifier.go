// Package learn provides the machine-learning substrate for UEI: binary
// probabilistic classifiers usable with uncertainty sampling. The paper's
// evaluation uses the dual weighted k-nearest-neighbor classifier (DWKNN,
// Gou et al. 2012) as the uncertainty estimator; Gaussian naive Bayes and
// logistic regression are provided as alternative probability-based models
// (§3: UEI "can be used in conjunction with any probabilistic-based
// classifiers").
package learn

import (
	"errors"
	"fmt"
)

// Binary class labels. The package is deliberately independent of the
// oracle package; the IDE layer converts between the two.
const (
	// ClassNegative is the irrelevant class (0).
	ClassNegative = 0
	// ClassPositive is the relevant class (1).
	ClassPositive = 1
)

// ErrNotFitted is returned by predictions on a classifier that has not been
// successfully fitted yet.
var ErrNotFitted = errors.New("learn: classifier is not fitted")

// Classifier is a binary probabilistic model. Fit must be called from a
// single goroutine; after a successful Fit, PosteriorPositive must be
// read-only with respect to the model, because the parallel scorer shards
// query points across goroutines against one shared classifier. (All
// classifiers in this package comply; see also BatchClassifier.)
type Classifier interface {
	// Fit (re)trains the model on the labeled set. X rows are copied or
	// retained read-only; y[i] must be ClassNegative or ClassPositive, and
	// both classes should be present for meaningful probabilities.
	Fit(X [][]float64, y []int) error
	// PosteriorPositive returns P(y = ClassPositive | x) in [0, 1].
	PosteriorPositive(x []float64) (float64, error)
	// Fitted reports whether the model has been trained.
	Fitted() bool
}

// Predict applies the 0.5 decision threshold to the positive posterior.
func Predict(c Classifier, x []float64) (int, error) {
	p, err := c.PosteriorPositive(x)
	if err != nil {
		return 0, err
	}
	if p >= 0.5 {
		return ClassPositive, nil
	}
	return ClassNegative, nil
}

// Uncertainty returns the least-confidence uncertainty of Eq. (1):
// u(x) = 1 - p(ŷ|x) where ŷ is the predicted class. For a binary model it
// equals min(p, 1-p) and peaks at 0.5 when p = 0.5, matching §3.2's "a value
// that equal to 50% being the most uncertain".
func Uncertainty(c Classifier, x []float64) (float64, error) {
	p, err := c.PosteriorPositive(x)
	if err != nil {
		return 0, err
	}
	if p > 0.5 {
		return 1 - p, nil
	}
	return p, nil
}

// checkTrainingSet validates the common Fit preconditions shared by all
// classifiers in this package.
func checkTrainingSet(X [][]float64, y []int) (dims int, err error) {
	if len(X) == 0 {
		return 0, fmt.Errorf("learn: empty training set")
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("learn: %d examples but %d labels", len(X), len(y))
	}
	dims = len(X[0])
	if dims == 0 {
		return 0, fmt.Errorf("learn: zero-dimensional examples")
	}
	for i, row := range X {
		if len(row) != dims {
			return 0, fmt.Errorf("learn: example %d has %d dims, want %d", i, len(row), dims)
		}
	}
	for i, label := range y {
		if label != ClassNegative && label != ClassPositive {
			return 0, fmt.Errorf("learn: label %d of example %d is not binary", label, i)
		}
	}
	return dims, nil
}

// clampProb forces numeric noise back into [0, 1].
func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
