package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanTreeGolden builds the nested shape of a traced, degraded server
// step — step → iteration → score fan-out over two shards (one timing
// out) → select — with a deterministic clock, and compares the emitted
// JSONL byte-for-byte. It then reconstructs the trace and asserts the
// parent/child linkage and degradation annotations the stream encodes.
func TestSpanTreeGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetNow(stepClock())

	trace := tr.NewTrace()
	if trace.ID() != "t000001" {
		t.Fatalf("trace id = %q, want t000001", trace.ID())
	}
	ctx := ContextWithTrace(context.Background(), trace)
	sctx, root := StartSpan(ctx, "step")
	ictx, iter := StartSpan(sctx, "iteration")
	scx, score := StartSpan(ictx, PhaseScore)
	_, sh0 := StartSpan(scx, "shard_score")
	sh0.SetOutcome("ok")
	sh0.End(map[string]float64{"shard": 0})
	_, sh1 := StartSpan(scx, "shard_score")
	sh1.SetOutcome("timeout")
	sh1.End(map[string]float64{"shard": 1, "deadline_ms": 5})
	score.End(nil)
	_, sel := StartSpan(ictx, PhaseSelect)
	sel.End(nil)
	iter.SetOutcome("degraded")
	iter.End(map[string]float64{"iter": 1})
	root.SetOutcome("degraded")
	root.End(nil)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "spans.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace mismatch\ngot:\n%swant:\n%s", buf.Bytes(), want)
	}

	// The stream must reconstruct to one orphan-free tree with the
	// injected degradation visible on the right spans.
	events, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(events)
	if len(a.Steps) != 1 || a.LegacyEvents != 0 {
		t.Fatalf("steps = %d, legacy = %d", len(a.Steps), a.LegacyEvents)
	}
	st := a.Steps[0]
	if len(st.Orphans) != 0 {
		t.Fatalf("orphans = %v", st.Orphans)
	}
	if st.Spans != 6 {
		t.Errorf("spans = %d, want 6", st.Spans)
	}
	if st.Root == nil || st.Root.Ev.Phase != "step" || st.Root.Ev.Outcome != "degraded" {
		t.Fatalf("root = %+v", st.Root)
	}
	var timeoutShard *SpanNode
	a.eachSpan(func(e Event) {
		if e.Phase == "shard_score" && e.Outcome == "timeout" {
			timeoutShard = &SpanNode{Ev: e}
		}
	})
	if timeoutShard == nil {
		t.Fatal("timed-out shard span missing from tree")
	}
	if timeoutShard.Ev.Attrs["shard"] != 1 {
		t.Errorf("timed-out shard attrs = %v, want shard 1", timeoutShard.Ev.Attrs)
	}

	// Budget attribution counts phase spans only: the containers (step,
	// iteration) and the shard fan-out must not double-count.
	totals := trace.PhaseTotals()
	if len(totals) != 2 || totals[PhaseScore] <= 0 || totals[PhaseSelect] <= 0 {
		t.Errorf("PhaseTotals = %v, want exactly score and select", totals)
	}
	if st.PhaseSum() >= st.Wall() {
		t.Errorf("phase sum %v must be below wall %v (containers excluded)", st.PhaseSum(), st.Wall())
	}
}

// TestSpanContextPropagation covers the three StartSpan modes and the
// nil-safety contract of the context plumbing.
func TestSpanContextPropagation(t *testing.T) {
	ctx := context.Background()

	// Nil trace: the context is untouched and nothing reports traced.
	if got := ContextWithTrace(ctx, nil); got != ctx {
		t.Error("ContextWithTrace(nil) must return ctx unchanged")
	}
	if HasTrace(ctx) || TraceFromContext(ctx) != nil || SpanFromContext(ctx) != nil {
		t.Error("plain context must carry no trace state")
	}

	// Measuring-only mode: no trace in ctx, span still times.
	mctx, m := StartSpan(ctx, "anything")
	if mctx != ctx {
		t.Error("measuring-only StartSpan must not grow the context")
	}
	time.Sleep(time.Millisecond)
	if d := m.End(nil); d <= 0 {
		t.Errorf("measuring-only duration = %v, want positive", d)
	}

	var nilTracer *Tracer
	if nilTracer.NewTrace() != nil {
		t.Error("nil tracer must mint nil traces")
	}
	var nilTrace *Trace
	if nilTrace.ID() != "" || nilTrace.PhaseTotals() != nil {
		t.Error("nil trace accessors must return zero values")
	}

	// Hierarchical mode: trace in ctx roots the first span, nests the rest.
	tr := NewTracer(&bytes.Buffer{})
	trace := tr.NewTrace()
	tctx := ContextWithTrace(ctx, trace)
	if !HasTrace(tctx) || TraceFromContext(tctx) != trace {
		t.Fatal("trace must round-trip through the context")
	}
	sctx, root := StartSpan(tctx, "step")
	if SpanFromContext(sctx) != root {
		t.Error("StartSpan must install the new span in the child context")
	}
	if !HasTrace(sctx) {
		t.Error("a context with an open span must report HasTrace")
	}
	_, child := StartSpan(sctx, PhaseScore)
	child.End(nil)
	root.End(nil)
	if trace.PhaseTotals()[PhaseScore] <= 0 {
		t.Error("phase child must feed PhaseTotals")
	}
}

// TestTracerPhaseModes checks that Tracer.Phase emits exactly one event in
// either mode: hierarchical with a trace in ctx, legacy without.
func TestTracerPhaseModes(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetNow(stepClock())

	_, legacy := tr.Phase(context.Background(), PhaseScore)
	if d := legacy.End(nil); d <= 0 {
		t.Errorf("legacy phase duration = %v", d)
	}
	ctx := ContextWithTrace(context.Background(), tr.NewTrace())
	_, hier := tr.Phase(ctx, PhaseScore)
	if d := hier.End(nil); d <= 0 {
		t.Errorf("hierarchical phase duration = %v", d)
	}

	dec := json.NewDecoder(&buf)
	var first, second Event
	if err := dec.Decode(&first); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&second); err != nil {
		t.Fatal(err)
	}
	if dec.More() {
		t.Fatal("exactly two events expected")
	}
	if first.TraceID != "" {
		t.Errorf("legacy event carries trace id %q", first.TraceID)
	}
	if second.TraceID == "" || second.SpanID == "" {
		t.Errorf("hierarchical event = %+v, want trace and span ids", second)
	}
	if first.Phase != PhaseScore || second.Phase != PhaseScore {
		t.Errorf("phases = %q, %q", first.Phase, second.Phase)
	}
}

// TestTracerConcurrentSpans drives many goroutines through the full
// trace/span lifecycle on one tracer — the serving topology — and checks
// the stream stays line-atomic. Run with -race.
func TestTracerConcurrentSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)

	const goroutines = 8
	const tracesEach = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < tracesEach; i++ {
				ctx := ContextWithTrace(context.Background(), tr.NewTrace())
				sctx, root := StartSpan(ctx, "step")
				_, child := StartSpan(sctx, PhaseScore)
				child.End(map[string]float64{"i": float64(i)})
				root.SetOutcome("ok")
				root.End(nil)
			}
		}()
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if want := goroutines * tracesEach * 2; len(lines) != want {
		t.Fatalf("emitted %d lines, want %d", len(lines), want)
	}
	seen := map[string]bool{}
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d not valid JSON (interleaved write?): %v\n%s", i+1, err, line)
		}
		if e.TraceID == "" || e.SpanID == "" {
			t.Fatalf("line %d missing identity: %+v", i+1, e)
		}
		key := e.TraceID + "/" + e.SpanID
		if seen[key] {
			t.Fatalf("duplicate span identity %s", key)
		}
		seen[key] = true
	}
	if a := Analyze(mustEvents(t, &buf, lines)); len(a.Orphans()) != 0 {
		t.Errorf("orphans after concurrent emission: %v", a.Orphans())
	}
}

// mustEvents re-parses raw JSONL lines into events.
func mustEvents(t *testing.T, _ *bytes.Buffer, lines []string) []Event {
	t.Helper()
	events, err := ReadTrace(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	return events
}

// TestTraceIDSequence pins the id scheme: per-tracer sortable trace ids,
// per-trace numeric span ids.
func TestTraceIDSequence(t *testing.T) {
	tr := NewTracer(&bytes.Buffer{})
	for i := 1; i <= 3; i++ {
		want := fmt.Sprintf("t%06d", i)
		if got := tr.NewTrace().ID(); got != want {
			t.Errorf("trace %d id = %q, want %q", i, got, want)
		}
	}
}
