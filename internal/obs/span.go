package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the hierarchical half of the tracer: trace/span identity
// and context propagation. The legacy per-iteration API (BeginIteration /
// StartPhase) remains for single-session CLI runs; the serving path mints
// one Trace per step request and threads it through context, so spans
// emitted anywhere below — engine phases, shard fan-outs, chunk reads —
// link back to the step that caused them via parent-span references.

// ctxKey discriminates the context values this package installs.
type ctxKey int

const (
	traceCtxKey ctxKey = iota
	spanCtxKey
)

// Trace groups the spans of one logical operation — for the server, one
// step request. It carries the identity every child span inherits and
// accumulates per-phase durations for SLO budget attribution. A nil
// *Trace is valid everywhere and disables emission.
type Trace struct {
	t  *Tracer
	id string
	// seq allocates span ids; span identity is (trace id, span id), so a
	// plain per-trace counter is unique and deterministic.
	seq atomic.Uint64

	mu     sync.Mutex
	rootID string
	phases map[string]time.Duration
}

// NewTrace mints a trace on this tracer. Trace ids are unique per tracer
// (and therefore per trace file): "t000001", "t000002", ... A nil tracer
// returns a nil trace, which every downstream consumer tolerates.
func (t *Tracer) NewTrace() *Trace {
	if t == nil {
		return nil
	}
	return &Trace{
		t:      t,
		id:     "t" + pad6(t.traceSeq.Add(1)),
		phases: make(map[string]time.Duration),
	}
}

// pad6 formats n with the fixed width that keeps trace ids sortable in
// logs and file names.
func pad6(n uint64) string {
	s := strconv.FormatUint(n, 10)
	for len(s) < 6 {
		s = "0" + s
	}
	return s
}

// ID returns the trace id ("" for a nil trace).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// PhaseTotals returns a copy of the per-phase durations accumulated by
// ended spans whose name is a known phase (IsPhaseName). Nil for a nil
// trace or before any phase span ended.
func (tr *Trace) PhaseTotals() map[string]time.Duration {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.phases) == 0 {
		return nil
	}
	out := make(map[string]time.Duration, len(tr.phases))
	for k, v := range tr.phases {
		out[k] = v
	}
	return out
}

// recordPhase accumulates an ended phase span's duration for budget
// attribution. Only known phase names count: container spans ("step",
// "iteration") and storage spans (shard_*, chunk_read, bcache_get) would
// double-count the phases nested inside or around them.
func (tr *Trace) recordPhase(name string, d time.Duration) {
	if tr == nil || !IsPhaseName(name) {
		return
	}
	tr.mu.Lock()
	tr.phases[name] += d
	tr.mu.Unlock()
}

// newSpan opens a child span (or a root, with parent ""). The first root
// is remembered so analysis can anchor the step tree.
func (tr *Trace) newSpan(name, parent string) *Span {
	s := &Span{
		t:      tr.t,
		tr:     tr,
		id:     strconv.FormatUint(tr.seq.Add(1), 10),
		parent: parent,
		name:   name,
		begin:  tr.t.clockNow(),
	}
	if parent == "" {
		tr.mu.Lock()
		if tr.rootID == "" {
			tr.rootID = s.id
		}
		tr.mu.Unlock()
	}
	return s
}

// ContextWithTrace attaches a trace to ctx. A nil trace returns ctx
// unchanged, so disabled tracing adds no context values at all.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey, tr)
}

// TraceFromContext returns the trace attached to ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceCtxKey).(*Trace)
	return tr
}

// SpanFromContext returns the innermost open span attached to ctx, or
// nil. Components on hot paths (per-chunk reads) use it as the cheap
// "is this request traced?" guard before opening their own spans.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey).(*Span)
	return s
}

// StartSpan opens a hierarchical span named name. With an open span in
// ctx the new span is its child; with only a trace in ctx it becomes the
// trace's root; with neither it returns a measuring-only span (End still
// reports the duration, nothing is emitted) and ctx unchanged — the
// disabled path allocates one struct and reads the clock twice, nothing
// more. The returned context carries the new span for further nesting.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if parent := SpanFromContext(ctx); parent != nil && parent.tr != nil {
		s := parent.tr.newSpan(name, parent.id)
		return context.WithValue(ctx, spanCtxKey, s), s
	}
	if tr := TraceFromContext(ctx); tr != nil {
		s := tr.newSpan(name, "")
		return context.WithValue(ctx, spanCtxKey, s), s
	}
	return ctx, &Span{name: name, begin: time.Now()}
}

// HasTrace reports whether ctx carries a trace or an open span — i.e.
// whether StartSpan would emit.
func HasTrace(ctx context.Context) bool {
	return SpanFromContext(ctx) != nil || TraceFromContext(ctx) != nil
}

// Phase opens a phase span in whichever mode fits the caller: a
// hierarchical child span when ctx carries a trace (the serving path), or
// a legacy iter-tagged span otherwise (the CLI path — byte-identical
// output to StartPhase). Exactly one event is emitted either way, and
// End always returns the measured duration, even on a nil tracer with an
// untraced ctx, so phase histograms keep working in every mode.
func (t *Tracer) Phase(ctx context.Context, name string) (context.Context, *Span) {
	if HasTrace(ctx) {
		return StartSpan(ctx, name)
	}
	return ctx, t.StartPhase(name)
}

// SetOutcome annotates the span with a terminal outcome ("ok",
// "degraded", "timeout", "error", "cancelled", "hit", "miss", ...). Call
// before End, from the span's own goroutine.
func (s *Span) SetOutcome(outcome string) {
	if s == nil {
		return
	}
	s.outcome = outcome
}

// Name returns the span's name (phase).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}
