package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file is the offline trace analyzer behind cmd/uei-trace: it reads
// the JSONL span stream back, rebuilds per-trace span trees from the
// parent references, and renders the reports the ISSUE asks for —
// per-step phase breakdown, top-N slowest steps with span trees, shard
// skew and degradation causes, and SLO compliance.

// SpanNode is one reconstructed span with its children, ordered by start
// offset.
type SpanNode struct {
	Ev       Event
	Children []*SpanNode
}

// StepTrace is one reconstructed trace (one server step).
type StepTrace struct {
	TraceID string
	Root    *SpanNode
	// Spans counts every span in the trace, root included.
	Spans int
	// Phases sums the durations of budget-attribution phase spans
	// (IsPhaseName), the additive decomposition of the step's wall time.
	Phases map[string]time.Duration
	// Orphans lists span ids whose parent id never appeared in the trace
	// (a bug: some code path failed to End an ancestor).
	Orphans []string
}

// Wall returns the root span duration (0 if the root is missing).
func (st *StepTrace) Wall() time.Duration {
	if st == nil || st.Root == nil {
		return 0
	}
	return time.Duration(st.Root.Ev.DurNS)
}

// PhaseSum returns the summed phase durations.
func (st *StepTrace) PhaseSum() time.Duration {
	var sum time.Duration
	for _, d := range st.Phases {
		sum += d
	}
	return sum
}

// Coverage returns phase-sum / wall in [0,1] (0 when wall is 0): how much
// of the step's wall time the phase decomposition accounts for.
func (st *StepTrace) Coverage() float64 {
	w := st.Wall()
	if w <= 0 {
		return 0
	}
	return float64(st.PhaseSum()) / float64(w)
}

// Analysis is the result of reconstructing a trace stream.
type Analysis struct {
	// Steps holds the reconstructed traces in trace-id order.
	Steps []*StepTrace
	// LegacyEvents counts events without trace ids (the single-session CLI
	// stream), which the step analysis ignores.
	LegacyEvents int
}

// Orphans returns every orphaned span across all steps as
// "traceID/spanID" strings.
func (a *Analysis) Orphans() []string {
	var out []string
	for _, st := range a.Steps {
		for _, id := range st.Orphans {
			out = append(out, st.TraceID+"/"+id)
		}
	}
	return out
}

// ReadTrace decodes a JSONL trace stream. Blank lines are skipped; a
// malformed line is an error (the stream is machine-written).
func ReadTrace(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	return events, nil
}

// Analyze reconstructs span trees from a trace stream.
func Analyze(events []Event) *Analysis {
	a := &Analysis{}
	byTrace := map[string][]Event{}
	var order []string
	for _, e := range events {
		if e.TraceID == "" {
			a.LegacyEvents++
			continue
		}
		if _, ok := byTrace[e.TraceID]; !ok {
			order = append(order, e.TraceID)
		}
		byTrace[e.TraceID] = append(byTrace[e.TraceID], e)
	}
	sort.Strings(order)
	for _, id := range order {
		a.Steps = append(a.Steps, buildStep(id, byTrace[id]))
	}
	return a
}

// buildStep links one trace's events into a tree by parent reference.
func buildStep(traceID string, evs []Event) *StepTrace {
	st := &StepTrace{TraceID: traceID, Phases: map[string]time.Duration{}}
	nodes := map[string]*SpanNode{}
	for _, e := range evs {
		nodes[e.SpanID] = &SpanNode{Ev: e}
		st.Spans++
		if IsPhaseName(e.Phase) {
			st.Phases[e.Phase] += time.Duration(e.DurNS)
		}
	}
	var orphans []string
	for _, e := range evs {
		n := nodes[e.SpanID]
		if e.ParentID == "" {
			if st.Root == nil {
				st.Root = n
			}
			continue
		}
		if p, ok := nodes[e.ParentID]; ok {
			p.Children = append(p.Children, n)
		} else {
			orphans = append(orphans, e.SpanID)
		}
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool {
			a, b := n.Children[i].Ev, n.Children[j].Ev
			if a.StartNS != b.StartNS {
				return a.StartNS < b.StartNS
			}
			return spanSeq(a.SpanID) < spanSeq(b.SpanID)
		})
	}
	sort.Strings(orphans)
	st.Orphans = orphans
	return st
}

// spanSeq parses a span id's numeric sequence for stable ordering.
func spanSeq(id string) uint64 {
	n, _ := strconv.ParseUint(id, 10, 64)
	return n
}

// ReportOptions controls WriteReport.
type ReportOptions struct {
	// TopN limits the slowest-steps span-tree section (default 3).
	TopN int
	// Budget is the SLO step budget (default DefaultSLOBudget).
	Budget time.Duration
}

// WriteReport renders the full uei-trace report: SLO compliance, phase
// breakdown, slowest steps with span trees, shard skew, and degradation
// causes.
func (a *Analysis) WriteReport(w io.Writer, opts ReportOptions) error {
	if opts.TopN <= 0 {
		opts.TopN = 3
	}
	if opts.Budget <= 0 {
		opts.Budget = DefaultSLOBudget
	}
	bw := bufio.NewWriter(w)
	a.writeSLO(bw, opts.Budget)
	a.writePhases(bw)
	a.writeScoreSkip(bw)
	a.writeSlowest(bw, opts.TopN)
	a.writeShards(bw)
	a.writeDegradation(bw)
	if orphans := a.Orphans(); len(orphans) > 0 {
		fmt.Fprintf(bw, "\nORPHANED SPANS (%d)\n", len(orphans))
		for _, id := range orphans {
			fmt.Fprintf(bw, "  %s\n", id)
		}
	}
	return bw.Flush()
}

// writeSLO prints the compliance section.
func (a *Analysis) writeSLO(w io.Writer, budget time.Duration) {
	fmt.Fprintf(w, "SLO COMPLIANCE (budget %s)\n", budget)
	n := len(a.Steps)
	if n == 0 {
		fmt.Fprintf(w, "  no traced steps\n")
		return
	}
	walls := make([]float64, 0, n)
	violations := 0
	for _, st := range a.Steps {
		wall := st.Wall()
		walls = append(walls, wall.Seconds())
		if wall > budget {
			violations++
		}
	}
	sort.Float64s(walls)
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(walls)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(walls) {
			i = len(walls) - 1
		}
		return walls[i]
	}
	fmt.Fprintf(w, "  steps      %d\n", n)
	fmt.Fprintf(w, "  violations %d (%.1f%% compliant)\n",
		violations, 100*float64(n-violations)/float64(n))
	fmt.Fprintf(w, "  p50 %s  p95 %s  p99 %s\n",
		fmtSec(rank(0.50)), fmtSec(rank(0.95)), fmtSec(rank(0.99)))
}

// writePhases prints the aggregate per-phase budget attribution.
func (a *Analysis) writePhases(w io.Writer) {
	totals := map[string]time.Duration{}
	var wall time.Duration
	for _, st := range a.Steps {
		wall += st.Wall()
		for p, d := range st.Phases {
			totals[p] += d
		}
	}
	if len(totals) == 0 {
		return
	}
	fmt.Fprintf(w, "\nPHASE BREAKDOWN (all steps, wall %s)\n", fmtDur(wall))
	for _, p := range sortedKeys(totals) {
		pct := 0.0
		if wall > 0 {
			pct = 100 * float64(totals[p]) / float64(wall)
		}
		fmt.Fprintf(w, "  %-10s %10s  %5.1f%%\n", p, fmtDur(totals[p]), pct)
	}
}

// writeScoreSkip prints the incremental rescorer's effectiveness from the
// score spans' points/skipped attributes: how much of the symbolic-point
// scoring work the exact delta rule avoided. Traces recorded before the
// kernel path (no "skipped" attribute, or no skipping) render nothing.
func (a *Analysis) writeScoreSkip(w io.Writer) {
	var spans int
	var points, skipped float64
	a.eachSpan(func(e Event) {
		if e.Phase != PhaseScore {
			return
		}
		s, ok := e.Attrs["skipped"]
		if !ok {
			return
		}
		spans++
		points += e.Attrs["points"]
		skipped += s
	})
	if spans == 0 || skipped == 0 {
		return
	}
	ratio := 0.0
	if points > 0 {
		ratio = 100 * skipped / points
	}
	fmt.Fprintf(w, "\nSCORE SKIPPING\n")
	fmt.Fprintf(w, "  score passes %d\n", spans)
	fmt.Fprintf(w, "  cells skipped %.0f of %.0f (%.1f%%) by exact incremental rescoring\n",
		skipped, points, ratio)
}

// writeSlowest prints the top-N slowest steps with their span trees.
func (a *Analysis) writeSlowest(w io.Writer, topN int) {
	if len(a.Steps) == 0 {
		return
	}
	steps := append([]*StepTrace(nil), a.Steps...)
	sort.Slice(steps, func(i, j int) bool {
		if steps[i].Wall() != steps[j].Wall() {
			return steps[i].Wall() > steps[j].Wall()
		}
		return steps[i].TraceID < steps[j].TraceID
	})
	if topN > len(steps) {
		topN = len(steps)
	}
	fmt.Fprintf(w, "\nSLOWEST STEPS (top %d)\n", topN)
	for _, st := range steps[:topN] {
		fmt.Fprintf(w, "  %s  wall %s  phase-coverage %.1f%%\n",
			st.TraceID, fmtDur(st.Wall()), 100*st.Coverage())
		if st.Root != nil {
			writeTree(w, st.Root, "    ")
		}
	}
}

// writeTree prints one span subtree, indented.
func writeTree(w io.Writer, n *SpanNode, indent string) {
	line := indent + n.Ev.Phase
	if n.Ev.Outcome != "" {
		line += " [" + n.Ev.Outcome + "]"
	}
	fmt.Fprintf(w, "%-40s %10s\n", line, fmtDur(time.Duration(n.Ev.DurNS)))
	for _, c := range n.Children {
		writeTree(w, c, indent+"  ")
	}
}

// writeShards prints per-shard load/latency skew from shard_* spans.
func (a *Analysis) writeShards(w io.Writer) {
	type stat struct {
		count    int
		total    time.Duration
		degraded int
	}
	stats := map[string]*stat{}
	a.eachSpan(func(e Event) {
		if !strings.HasPrefix(e.Phase, "shard_") {
			return
		}
		id, ok := e.Attrs["shard"]
		if !ok {
			return
		}
		key := strconv.Itoa(int(id))
		s := stats[key]
		if s == nil {
			s = &stat{}
			stats[key] = s
		}
		s.count++
		s.total += time.Duration(e.DurNS)
		if e.Outcome != "" && e.Outcome != "ok" {
			s.degraded++
		}
	})
	if len(stats) == 0 {
		return
	}
	fmt.Fprintf(w, "\nSHARD SKEW\n")
	keys := sortedKeys(stats)
	sort.Slice(keys, func(i, j int) bool { return spanSeq(keys[i]) < spanSeq(keys[j]) })
	for _, k := range keys {
		s := stats[k]
		mean := time.Duration(0)
		if s.count > 0 {
			mean = s.total / time.Duration(s.count)
		}
		fmt.Fprintf(w, "  shard %-3s ops %-4d total %10s  mean %10s  degraded %d\n",
			k, s.count, fmtDur(s.total), fmtDur(mean), s.degraded)
	}
}

// writeDegradation prints non-ok outcome counts per span name.
func (a *Analysis) writeDegradation(w io.Writer) {
	causes := map[string]int{}
	a.eachSpan(func(e Event) {
		if e.Outcome == "" || e.Outcome == "ok" || e.Outcome == "hit" || e.Outcome == "miss" {
			return
		}
		causes[e.Phase+"/"+e.Outcome]++
	})
	if len(causes) == 0 {
		return
	}
	fmt.Fprintf(w, "\nDEGRADATION CAUSES\n")
	for _, k := range sortedKeys(causes) {
		fmt.Fprintf(w, "  %-30s %d\n", k, causes[k])
	}
}

// eachSpan visits every span event across all steps.
func (a *Analysis) eachSpan(fn func(Event)) {
	for _, st := range a.Steps {
		var walk func(n *SpanNode)
		walk = func(n *SpanNode) {
			fn(n.Ev)
			for _, c := range n.Children {
				walk(c)
			}
		}
		if st.Root != nil {
			walk(st.Root)
		}
	}
}

// fmtDur renders a duration with millisecond precision for report
// alignment.
func fmtDur(d time.Duration) string {
	return fmtSec(d.Seconds())
}

// fmtSec renders seconds as fixed-point milliseconds.
func fmtSec(s float64) string {
	return strconv.FormatFloat(s*1000, 'f', 3, 64) + "ms"
}
