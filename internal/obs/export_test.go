package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func exportFixture() *Registry {
	r := NewRegistry()
	r.Counter("reads_total").Add(7)
	r.Gauge("used_bytes").Set(1024.5)
	h := r.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := exportFixture().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE reads_total counter\nreads_total 7\n",
		"# TYPE used_bytes gauge\nused_bytes 1024.5\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 2.55\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestWritePrometheusLabeledFamilies checks that labeled series (names
// carrying a {label} suffix, like the per-shard skip counters) share one
// # TYPE header per metric family, as the exposition format requires.
func TestWritePrometheusLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter(`shard_skip_total{shard="0"}`).Add(2)
	r.Counter(`shard_skip_total{shard="1"}`).Add(5)
	r.Counter(`shard_degraded_cause_total{cause="deadline"}`).Inc()
	r.Gauge(`slo_violation_phase_seconds{phase="score"}`).Set(0.25)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "# TYPE shard_skip_total counter"); got != 1 {
		t.Errorf("shard_skip_total TYPE lines = %d, want exactly 1 in:\n%s", got, out)
	}
	for _, want := range []string{
		"shard_skip_total{shard=\"0\"} 2\n",
		"shard_skip_total{shard=\"1\"} 5\n",
		"# TYPE shard_degraded_cause_total counter\nshard_degraded_cause_total{cause=\"deadline\"} 1\n",
		"# TYPE slo_violation_phase_seconds gauge\nslo_violation_phase_seconds{phase=\"score\"} 0.25\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := exportFixture().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(b.String()), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["reads_total"] != 7 || s.Gauges["used_bytes"] != 1024.5 {
		t.Errorf("round-trip = %+v", s)
	}
	if s.Histograms["lat_seconds"].Count != 3 {
		t.Errorf("histogram = %+v", s.Histograms["lat_seconds"])
	}
}

func TestServeEndpoints(t *testing.T) {
	r := exportFixture()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "reads_total 7") {
		t.Errorf("/metrics = %q", out)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(get("/debug/vars")), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["reads_total"] != 7 {
		t.Errorf("/debug/vars = %+v", s)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("pprof cmdline empty")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", NewRegistry()); err == nil {
		t.Error("expected listen error")
	}
}
