// Package obs is the unified observability layer of the UEI stack: a
// lock-cheap metrics registry, a per-iteration exploration tracer, and
// exporters that make both visible to humans and scrapers.
//
// The paper's headline claim is per-iteration interactivity — every
// exploration iteration must finish inside the σ = 500 ms bound even at a
// restricted memory budget. Verifying (and later improving) that claim
// requires attributing each iteration's wall time to its phases: symbolic
// index scoring, chunk-store region loads, classifier retraining, prefetch
// waits, and cache swaps. This package provides the substrate:
//
//   - Registry: named atomic counters, gauges, and fixed-bucket latency
//     histograms. Instruments are created once and then updated with a
//     single atomic operation, so they are safe (and cheap) to touch from
//     the exploration loop and the prefetcher goroutine concurrently while
//     an HTTP scraper snapshots them.
//   - Tracer: span-like phase timings for the exploration loop, emitted as
//     structured JSON Lines events to an io.Writer. Each iteration is a
//     root span containing score/load/swap/select/label/retrain child
//     phases with nanosecond durations and free-form numeric attributes
//     (bytes read, pool sizes, cell ids).
//   - Hierarchical tracing: Trace/StartSpan add context-propagated trace
//     and span ids on top of the same tracer. The server mints one Trace
//     per step request; every span opened under that context — engine
//     phases, per-shard fan-out legs, chunk and cache reads — carries a
//     parent-span reference and an outcome annotation, so the JSONL
//     stream reconstructs into one tree per step (Analyze, cmd/uei-trace).
//     Without a trace in context the same call sites fall back to the
//     legacy flat stream (Tracer.Phase) or to measuring-only spans.
//   - SLO: a per-step interactivity budget accountant — rolling
//     nearest-rank p50/p95/p99 step-latency gauges, a violation counter,
//     and per-phase attribution of violating steps' wall time, fed from
//     Trace.PhaseTotals.
//   - Exporters: an expvar-style JSON snapshot, a Prometheus text-format
//     dump (labeled series like shard_skip_total{shard="0"} grouped into
//     one # TYPE family per base name), an http.Server bundling /metrics,
//     /debug/vars, and net/http/pprof, and a phase-latency breakdown
//     table (FormatSummary) that attributes total iteration wall time to
//     named phases.
//
// All instrument methods are nil-receiver safe no-ops, and a nil *Registry
// hands out nil instruments, so callers thread a single optional *Registry
// through the stack without guarding every observation site.
//
// Metric naming follows Prometheus conventions: snake_case, a subsystem
// prefix (uei_, chunkstore_, prefetch_, memcache_, ide_), unit suffixes
// (_seconds, _bytes), and _total for counters. Phase latency histograms
// share the phase_<name>_seconds pattern that FormatSummary keys on.
package obs
