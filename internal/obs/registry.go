package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-receiver safe no-ops so uninstrumented components pay nothing.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative deltas are ignored: counters
// only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 instantaneous value (resident bytes, queue
// depth, F-measure).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer gauge value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add accumulates delta into the gauge (CAS loop, safe under concurrent
// writers). Used for per-phase budget-attribution sums, which grow but are
// not counters (they hold fractional seconds).
func (g *Gauge) Add(delta float64) {
	if g == nil || delta == 0 {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram over float64 observations
// (seconds, for every latency histogram in the stack). Buckets are
// cumulative-upper-bound style: bucket i counts observations ≤ bounds[i],
// with one implicit overflow bucket. Observation is a couple of atomic
// adds; snapshots are consistent enough for monitoring (not transactional
// across fields).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	maxv   atomic.Uint64 // float64 bits
}

// DefaultLatencyBuckets spans 50µs to 10s exponentially — wide enough for
// both sub-millisecond in-memory phases and throttled multi-second region
// loads, bracketing the paper's 500 ms interactivity bound.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
		1, 2.5, 5, 10,
	}
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample. NaN is dropped; negative values clamp to 0.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bounds[i]
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxv.Load()
		// Observations are clamped non-negative, so the zero initial max
		// is a valid floor.
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxv.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	// Buckets holds cumulative counts aligned with Bounds plus a final
	// +Inf overflow entry.
	Buckets []int64 `json:"buckets"`
}

// Snapshot summarizes the histogram. Percentiles are estimated as the
// upper bound of the bucket containing the nearest-rank sample, clamped to
// the exact observed maximum (so a histogram never reports a percentile
// above a value it has seen).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sum.Load()),
		Max:     math.Float64frombits(h.maxv.Load()),
		Buckets: make([]int64, len(h.counts)),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Buckets[i] = cum
	}
	if s.Count == 0 {
		return s
	}
	s.Mean = s.Sum / float64(s.Count)
	s.P50 = h.quantile(s, 0.50)
	s.P95 = h.quantile(s, 0.95)
	s.P99 = h.quantile(s, 0.99)
	return s
}

// quantile estimates the q-quantile from cumulative bucket counts.
func (h *Histogram) quantile(s HistogramSnapshot, q float64) float64 {
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	for i, cum := range s.Buckets {
		if cum >= rank {
			if i < len(h.bounds) {
				return math.Min(h.bounds[i], s.Max)
			}
			return s.Max // overflow bucket: best estimate is the max
		}
	}
	return s.Max
}

// Registry names and owns instruments. Instrument lookup takes a mutex
// (create-once, typically at Open time); updates afterwards are pure
// atomics. A nil *Registry hands out nil instruments, which no-op.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls keep the original buckets; nil
// bounds select DefaultLatencyBuckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultLatencyBuckets()
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument, with deterministic
// (sorted) iteration order via the SortedX accessors.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures all instruments. Safe to call concurrently with
// updates.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	ctrs := make(map[string]*Counter, len(r.ctrs))
	for k, v := range r.ctrs {
		ctrs[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range ctrs {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// sortedKeys returns map keys in lexical order for deterministic export.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
