package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// stepClock advances one millisecond per reading, making every emitted
// timestamp and duration deterministic.
func stepClock() func() time.Time {
	base := time.Unix(1600000000, 0)
	ticks := 0
	return func() time.Time {
		ticks++
		return base.Add(time.Duration(ticks) * time.Millisecond)
	}
}

func TestTracerGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetNow(stepClock()) // rebases start to tick 1

	tr.BeginIteration(1)                                     // tick 2
	score := tr.StartPhase(PhaseScore)                       // tick 3
	score.End(map[string]float64{"points": 3125, "cell": 2}) // tick 4
	load := tr.StartPhase(PhaseLoad)                         // tick 5
	load.End(nil)                                            // tick 6
	tr.EndIteration(map[string]float64{"labels": 1})         // tick 7

	golden := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace mismatch\ngot:\n%swant:\n%s", buf.Bytes(), want)
	}
	if tr.Err() != nil {
		t.Errorf("Err = %v", tr.Err())
	}
}

func TestTracerEventShape(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetNow(stepClock())
	tr.BeginIteration(3)
	tr.StartPhase(PhaseRetrain).End(map[string]float64{"labeled": 12})
	tr.EndIteration(nil)

	dec := json.NewDecoder(&buf)
	var span, iter Event
	if err := dec.Decode(&span); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&iter); err != nil {
		t.Fatal(err)
	}
	if span.Type != "span" || span.Iter != 3 || span.Phase != PhaseRetrain {
		t.Errorf("span = %+v", span)
	}
	if span.DurNS <= 0 {
		t.Errorf("span duration %d must be positive", span.DurNS)
	}
	if span.Attrs["labeled"] != 12 {
		t.Errorf("attrs = %v", span.Attrs)
	}
	if iter.Type != "iteration" || iter.Iter != 3 || iter.Phase != "" {
		t.Errorf("iteration = %+v", iter)
	}
	if iter.DurNS <= span.DurNS {
		t.Error("iteration root must cover its child span")
	}
}

func TestNilTracerStillMeasures(t *testing.T) {
	var tr *Tracer
	tr.BeginIteration(1) // all no-ops, must not panic
	tr.EndIteration(nil)
	if tr.Err() != nil {
		t.Error("nil tracer Err must be nil")
	}
	span := tr.StartPhase(PhaseScore)
	time.Sleep(time.Millisecond)
	if d := span.End(nil); d <= 0 {
		t.Errorf("nil-tracer span duration = %v, want positive", d)
	}
	var s *PhaseSpan
	if s.End(nil) != 0 {
		t.Error("nil span End must return 0")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("disk full")
}

func TestTracerStickyWriteError(t *testing.T) {
	fw := &failWriter{}
	tr := NewTracer(fw)
	tr.SetNow(stepClock())
	tr.StartPhase(PhaseScore).End(nil)
	tr.StartPhase(PhaseLoad).End(nil)
	tr.StartPhase(PhaseSwap).End(nil)
	if tr.Err() == nil {
		t.Fatal("expected a write error")
	}
	if fw.n != 1 {
		t.Errorf("writer called %d times; the first failure must silence the trace", fw.n)
	}
}

func TestPhaseHistName(t *testing.T) {
	if got := PhaseHistName(PhaseScore); got != "phase_score_seconds" {
		t.Errorf("PhaseHistName = %q", got)
	}
}
