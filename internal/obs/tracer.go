package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Phase names emitted by the instrumented stack. Components outside this
// list may emit their own; FormatSummary keys on the registry's
// phase_<name>_seconds histograms, not on this enumeration.
const (
	PhasePrepare   = "prepare"   // provider preparation (sample fill) + seeding
	PhaseBootstrap = "bootstrap" // initial random example acquisition
	PhaseScore     = "score"     // symbolic-index re-scoring (Algorithm 2 line 17)
	PhaseLoad      = "load"      // chunk-store region load / prefetch wait
	PhaseSwap      = "swap"      // cache region install
	PhaseSelect    = "select"    // candidate pool argmax scan
	PhaseLabel     = "label"     // oracle / user labeling
	PhaseRetrain   = "retrain"   // classifier refit
	PhaseRetrieve  = "retrieve"  // final result retrieval
)

// Background write-path span names. These are NOT budget-attribution
// phases (they run outside the step, on the stream subsystem's flusher
// and compactor goroutines), so they stay out of phaseNames — adding them
// would double-attribute step wall time in the SLO breakdown.
const (
	SpanFlush   = "flush"   // memtable → segment flush (stream)
	SpanCompact = "compact" // segment merge / retirement (stream)
)

// phaseNames is the closed set IsPhaseName recognizes: the spans whose
// durations are additive within a step. Container spans ("step",
// "iteration") and storage spans (shard_*, chunk_read, bcache_get) nest
// phases or nest inside them, so counting both would double-attribute.
var phaseNames = map[string]bool{
	PhasePrepare:   true,
	PhaseBootstrap: true,
	PhaseScore:     true,
	PhaseLoad:      true,
	PhaseSwap:      true,
	PhaseSelect:    true,
	PhaseLabel:     true,
	PhaseRetrain:   true,
	PhaseRetrieve:  true,
}

// IsPhaseName reports whether name is a budget-attribution phase: a span
// whose duration may be summed with its sibling phases to account for a
// step's wall time (SLO attribution and the uei-trace breakdown rely on
// this set being non-overlapping within a trace).
func IsPhaseName(name string) bool { return phaseNames[name] }

// PhaseHistName returns the registry histogram name for a phase, the
// naming contract FormatSummary scans for.
func PhaseHistName(phase string) string { return "phase_" + phase + "_seconds" }

// Event is one JSON Lines trace record. Spans carry start offsets relative
// to tracer creation and nanosecond durations, so even sub-microsecond
// phases have positive extent. Legacy (per-iteration) events carry Iter
// and no ids; hierarchical events carry TraceID/SpanID (and ParentID for
// non-roots) — every new field is omitempty, so the legacy emission is
// byte-identical to prior releases.
type Event struct {
	// Type is "span" for phase spans and "iteration" for the per-iteration
	// root span of the legacy API.
	Type string `json:"type"`
	// TraceID groups the spans of one traced operation (one server step).
	TraceID string `json:"trace_id,omitempty"`
	// SpanID identifies this span within its trace.
	SpanID string `json:"span_id,omitempty"`
	// ParentID is the enclosing span's SpanID ("" for a trace root).
	ParentID string `json:"parent_id,omitempty"`
	// Iter is the exploration iteration the event belongs to (0 before the
	// interactive loop starts). Legacy-mode only.
	Iter int `json:"iter"`
	// Phase names the span ("score", "load", ...; legacy "iteration" roots
	// carry the empty phase).
	Phase string `json:"phase,omitempty"`
	// Outcome is the span's terminal annotation ("ok", "timeout",
	// "degraded", ...), set via Span.SetOutcome.
	Outcome string `json:"outcome,omitempty"`
	// StartNS is the span start, in nanoseconds since the trace began.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span duration in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// Attrs carries free-form numeric attributes (bytes read, pool size,
	// cell id, hit/miss flags). encoding/json sorts the keys, keeping the
	// emitted lines deterministic for a fixed clock.
	Attrs map[string]float64 `json:"attrs,omitempty"`
}

// Tracer emits exploration trace events to a writer, one JSON object per
// line. All methods are nil-receiver safe, so a nil *Tracer disables
// tracing at zero cost beyond a branch; StartPhase on a nil tracer still
// returns a live span whose End reports the measured duration (components
// reuse it to feed their histograms).
//
// One mutex guards the encoder, so concurrent sessions (the serving path)
// interleave whole lines, never bytes; when the writer exposes
// Flush() error (a bufio.Writer), every event is flushed through it so a
// crash loses at most the line being written.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	now   func() time.Time
	start time.Time
	iter  int
	// iterStart anchors the current iteration root span.
	iterStart time.Time
	err       error
	// traceSeq allocates NewTrace ids.
	traceSeq atomic.Uint64
}

// flusher is the optional writer interface emitLocked pushes each event
// through (bufio.Writer implements it).
type flusher interface{ Flush() error }

// NewTracer wraps a writer. The caller owns the writer's lifecycle
// (flush/close).
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: w, now: time.Now}
	t.start = t.now()
	return t
}

// SetNow replaces the clock, for deterministic tests. It rebases the trace
// start on the new clock.
func (t *Tracer) SetNow(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	t.start = now()
}

// Err returns the first write error encountered, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// clockNow reads the tracer clock, tolerating a nil tracer.
func (t *Tracer) clockNow() time.Time {
	if t == nil {
		return time.Now()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.now()
}

// BeginIteration opens iteration n's root span; child phases emitted until
// EndIteration are tagged with n. Legacy API: the serving path uses
// NewTrace/StartSpan instead, whose iteration spans nest under the step.
func (t *Tracer) BeginIteration(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.iter = n
	t.iterStart = t.now()
}

// EndIteration closes the current iteration root span, emitting an
// "iteration" event covering its full extent.
func (t *Tracer) EndIteration(attrs map[string]float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.now()
	t.emitLocked(Event{
		Type:    "iteration",
		Iter:    t.iter,
		StartNS: t.iterStart.Sub(t.start).Nanoseconds(),
		DurNS:   end.Sub(t.iterStart).Nanoseconds(),
		Attrs:   attrs,
	})
}

// Span is an open timing. End emits it (when a live tracer backs it) and
// always returns the measured duration. A span is in exactly one of three
// modes: hierarchical (tr non-nil: trace/span ids, parent reference),
// legacy (tr nil, t non-nil: iter-tagged flat span), or measuring-only
// (both nil: no emission). Spans are single-goroutine: start, SetOutcome,
// and End happen on the goroutine doing the spanned work.
type Span struct {
	t       *Tracer
	tr      *Trace
	id      string
	parent  string
	name    string
	begin   time.Time
	outcome string
}

// PhaseSpan is the legacy name for Span, kept for callers of StartPhase.
type PhaseSpan = Span

// StartPhase opens a legacy-mode span. Valid on a nil tracer: the
// returned span still measures, it just doesn't emit.
func (t *Tracer) StartPhase(phase string) *PhaseSpan {
	return &Span{t: t, name: phase, begin: t.clockNow()}
}

// End closes the span with optional attributes and returns its duration.
func (s *Span) End(attrs map[string]float64) time.Duration {
	if s == nil {
		return 0
	}
	end := s.t.clockNow()
	d := end.Sub(s.begin)
	if s.tr != nil {
		s.tr.recordPhase(s.name, d)
		if t := s.t; t != nil {
			t.mu.Lock()
			t.emitLocked(Event{
				Type:     "span",
				TraceID:  s.tr.id,
				SpanID:   s.id,
				ParentID: s.parent,
				Phase:    s.name,
				Outcome:  s.outcome,
				StartNS:  s.begin.Sub(t.start).Nanoseconds(),
				DurNS:    d.Nanoseconds(),
				Attrs:    attrs,
			})
			t.mu.Unlock()
		}
		return d
	}
	if t := s.t; t != nil {
		t.mu.Lock()
		t.emitLocked(Event{
			Type:    "span",
			Iter:    t.iter,
			Phase:   s.name,
			Outcome: s.outcome,
			StartNS: s.begin.Sub(t.start).Nanoseconds(),
			DurNS:   d.Nanoseconds(),
			Attrs:   attrs,
		})
		t.mu.Unlock()
	}
	return d
}

// emitLocked writes one event line; the first failure is sticky and
// silences the trace (exploration must not die because a trace disk
// filled). When the writer buffers (flusher), the event is flushed
// through immediately so concurrent sessions' traces survive a crash.
func (t *Tracer) emitLocked(e Event) {
	if t.err != nil || t.w == nil {
		return
	}
	line, err := json.Marshal(e)
	if err != nil {
		t.err = err
		return
	}
	line = append(line, '\n')
	if _, err := t.w.Write(line); err != nil {
		t.err = err
		return
	}
	if f, ok := t.w.(flusher); ok {
		if err := f.Flush(); err != nil {
			t.err = err
		}
	}
}
