package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Phase names emitted by the instrumented stack. Components outside this
// list may emit their own; FormatSummary keys on the registry's
// phase_<name>_seconds histograms, not on this enumeration.
const (
	PhaseScore   = "score"   // symbolic-index re-scoring (Algorithm 2 line 17)
	PhaseLoad    = "load"    // chunk-store region load / prefetch wait
	PhaseSwap    = "swap"    // cache region install
	PhaseSelect  = "select"  // candidate pool argmax scan
	PhaseLabel   = "label"   // oracle / user labeling
	PhaseRetrain = "retrain" // classifier refit
)

// PhaseHistName returns the registry histogram name for a phase, the
// naming contract FormatSummary scans for.
func PhaseHistName(phase string) string { return "phase_" + phase + "_seconds" }

// Event is one JSON Lines trace record. Spans carry start offsets relative
// to tracer creation and nanosecond durations, so even sub-microsecond
// phases have positive extent.
type Event struct {
	// Type is "span" for phase spans and "iteration" for the per-iteration
	// root span.
	Type string `json:"type"`
	// Iter is the exploration iteration the event belongs to (0 before the
	// interactive loop starts).
	Iter int `json:"iter"`
	// Phase names the span ("score", "load", ...; "iteration" roots carry
	// the empty phase).
	Phase string `json:"phase,omitempty"`
	// StartNS is the span start, in nanoseconds since the trace began.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span duration in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// Attrs carries free-form numeric attributes (bytes read, pool size,
	// cell id, hit/miss flags). encoding/json sorts the keys, keeping the
	// emitted lines deterministic for a fixed clock.
	Attrs map[string]float64 `json:"attrs,omitempty"`
}

// Tracer emits exploration trace events to a writer, one JSON object per
// line. All methods are nil-receiver safe, so a nil *Tracer disables
// tracing at zero cost beyond a branch; StartPhase on a nil tracer still
// returns a live span whose End reports the measured duration (components
// reuse it to feed their histograms).
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	now   func() time.Time
	start time.Time
	iter  int
	// iterStart anchors the current iteration root span.
	iterStart time.Time
	err       error
}

// NewTracer wraps a writer. The caller owns the writer's lifecycle
// (flush/close).
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: w, now: time.Now}
	t.start = t.now()
	return t
}

// SetNow replaces the clock, for deterministic tests. It rebases the trace
// start on the new clock.
func (t *Tracer) SetNow(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	t.start = now()
}

// Err returns the first write error encountered, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// clockNow reads the tracer clock, tolerating a nil tracer.
func (t *Tracer) clockNow() time.Time {
	if t == nil {
		return time.Now()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.now()
}

// BeginIteration opens iteration n's root span; child phases emitted until
// EndIteration are tagged with n.
func (t *Tracer) BeginIteration(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.iter = n
	t.iterStart = t.now()
}

// EndIteration closes the current iteration root span, emitting an
// "iteration" event covering its full extent.
func (t *Tracer) EndIteration(attrs map[string]float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.now()
	t.emitLocked(Event{
		Type:    "iteration",
		Iter:    t.iter,
		StartNS: t.iterStart.Sub(t.start).Nanoseconds(),
		DurNS:   end.Sub(t.iterStart).Nanoseconds(),
		Attrs:   attrs,
	})
}

// PhaseSpan is an open phase timing. End emits the span (when the parent
// tracer is live) and always returns the measured duration.
type PhaseSpan struct {
	t     *Tracer
	phase string
	begin time.Time
}

// StartPhase opens a span. Valid on a nil tracer: the returned span still
// measures, it just doesn't emit.
func (t *Tracer) StartPhase(phase string) *PhaseSpan {
	return &PhaseSpan{t: t, phase: phase, begin: t.clockNow()}
}

// End closes the span with optional attributes and returns its duration.
func (s *PhaseSpan) End(attrs map[string]float64) time.Duration {
	if s == nil {
		return 0
	}
	end := s.t.clockNow()
	d := end.Sub(s.begin)
	if t := s.t; t != nil {
		t.mu.Lock()
		t.emitLocked(Event{
			Type:    "span",
			Iter:    t.iter,
			Phase:   s.phase,
			StartNS: s.begin.Sub(t.start).Nanoseconds(),
			DurNS:   d.Nanoseconds(),
			Attrs:   attrs,
		})
		t.mu.Unlock()
	}
	return d
}

// emitLocked writes one event line; the first failure is sticky and
// silences the trace (exploration must not die because a trace disk
// filled).
func (t *Tracer) emitLocked(e Event) {
	if t.err != nil || t.w == nil {
		return
	}
	line, err := json.Marshal(e)
	if err != nil {
		t.err = err
		return
	}
	line = append(line, '\n')
	if _, err := t.w.Write(line); err != nil {
		t.err = err
	}
}
