package obs

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestAnalyzeSampleReportGolden runs the full analyzer over the checked-in
// sample trace (one fast sharded step, one SLO-violating step degraded by
// a shard timeout, one label/retrain step) and compares the complete
// uei-trace report against its golden rendering. The golden file doubles
// as the documentation sample referenced by the README.
func TestAnalyzeSampleReportGolden(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "sample_trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(events)

	if len(a.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(a.Steps))
	}
	if orphans := a.Orphans(); len(orphans) != 0 {
		t.Fatalf("orphans = %v", orphans)
	}
	slow := a.Steps[1] // t000002
	if slow.TraceID != "t000002" || slow.Wall() != 600*time.Millisecond {
		t.Fatalf("slow step = %s wall %v", slow.TraceID, slow.Wall())
	}
	if slow.Root.Ev.Outcome != "degraded" {
		t.Errorf("slow step outcome = %q", slow.Root.Ev.Outcome)
	}

	var buf bytes.Buffer
	if err := a.WriteReport(&buf, ReportOptions{TopN: 2, Budget: 500 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sample_report.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report mismatch\ngot:\n%swant:\n%s", buf.Bytes(), want)
	}
}

// TestAnalyzeAttributionCoverage checks the analyzer's additive phase
// decomposition on the sample's slow step: the phase spans (score, select,
// retrain — not the shard fan-outs nested inside score) must account for
// the root wall time to within the 5% bound the acceptance criteria set.
func TestAnalyzeAttributionCoverage(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "sample_trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(events)
	slow := a.Steps[1]
	wantSum := 520*time.Millisecond + 30*time.Millisecond + 25*time.Millisecond
	if slow.PhaseSum() != wantSum {
		t.Errorf("phase sum = %v, want %v (shard spans must not double-count)", slow.PhaseSum(), wantSum)
	}
	if cov := slow.Coverage(); math.Abs(cov-1) > 0.05 {
		t.Errorf("coverage = %.3f, want within 5%% of 1.0", cov)
	}
}

func TestAnalyzeOrphanDetection(t *testing.T) {
	events := []Event{
		{Type: "span", TraceID: "t000009", SpanID: "1", Phase: "step", DurNS: 10},
		{Type: "span", TraceID: "t000009", SpanID: "7", ParentID: "99", Phase: PhaseScore, DurNS: 5},
	}
	a := Analyze(events)
	orphans := a.Orphans()
	if len(orphans) != 1 || orphans[0] != "t000009/7" {
		t.Fatalf("orphans = %v, want [t000009/7]", orphans)
	}

	var buf bytes.Buffer
	if err := a.WriteReport(&buf, ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ORPHANED SPANS (1)") {
		t.Errorf("report must surface orphans:\n%s", buf.String())
	}
}

func TestAnalyzeLegacyEventsIgnored(t *testing.T) {
	events := []Event{
		{Type: "span", Iter: 1, Phase: PhaseScore, DurNS: 5},
		{Type: "iteration", Iter: 1, DurNS: 10},
	}
	a := Analyze(events)
	if len(a.Steps) != 0 || a.LegacyEvents != 2 {
		t.Errorf("steps = %d, legacy = %d; want 0 and 2", len(a.Steps), a.LegacyEvents)
	}
}

func TestReadTraceMalformed(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{\"type\":\"span\"}\nnot json\n")); err == nil {
		t.Fatal("malformed line must error")
	}
	events, err := ReadTrace(strings.NewReader("\n\n{\"type\":\"span\",\"iter\":1,\"start_ns\":0,\"dur_ns\":1}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Errorf("blank lines must be skipped; got %d events", len(events))
	}
}

// TestWriteReportEmpty checks the degenerate report (no events at all)
// renders without panicking and says so.
func TestWriteReportEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Analysis{}).WriteReport(&buf, ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no traced steps") {
		t.Errorf("empty report:\n%s", buf.String())
	}
}
