package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// IterationHistName is the root iteration-latency histogram FormatSummary
// uses as the wall-time denominator of the phase breakdown.
const IterationHistName = "ide_iteration_seconds"

// PhaseStat is one row of the phase-latency breakdown.
type PhaseStat struct {
	Phase string
	HistogramSnapshot
}

// PhaseBreakdown extracts every phase_<name>_seconds histogram from the
// registry, sorted by descending total time, plus the total iteration wall
// time (from IterationHistName; zero when absent).
func PhaseBreakdown(r *Registry) (phases []PhaseStat, totalWall time.Duration) {
	s := r.Snapshot()
	for name, h := range s.Histograms {
		if !strings.HasPrefix(name, "phase_") || !strings.HasSuffix(name, "_seconds") {
			continue
		}
		phase := strings.TrimSuffix(strings.TrimPrefix(name, "phase_"), "_seconds")
		phases = append(phases, PhaseStat{Phase: phase, HistogramSnapshot: h})
	}
	sort.Slice(phases, func(i, j int) bool {
		if phases[i].Sum != phases[j].Sum {
			return phases[i].Sum > phases[j].Sum
		}
		return phases[i].Phase < phases[j].Phase
	})
	if it, ok := s.Histograms[IterationHistName]; ok {
		totalWall = secs(it.Sum)
	}
	return phases, totalWall
}

// FormatSummary renders the phase-latency breakdown table: per phase, the
// call count, total and mean time, tail percentiles, and the share of
// iteration wall time attributed to it. It is the after-run "-summary"
// report of uei-explore and uei-bench.
func FormatSummary(r *Registry) string {
	phases, totalWall := PhaseBreakdown(r)
	var b strings.Builder
	b.WriteString("Phase latency breakdown\n")
	if len(phases) == 0 {
		b.WriteString("  (no phase histograms recorded)\n")
		return b.String()
	}
	denom := totalWall
	if denom == 0 {
		for _, p := range phases {
			denom += secs(p.Sum)
		}
	}
	fmt.Fprintf(&b, "  %-10s %8s %12s %12s %12s %12s %12s %7s\n",
		"phase", "count", "total", "mean", "p50", "p95", "max", "share")
	var attributed time.Duration
	for _, p := range phases {
		total := secs(p.Sum)
		attributed += total
		share := 0.0
		if denom > 0 {
			share = float64(total) / float64(denom) * 100
		}
		fmt.Fprintf(&b, "  %-10s %8d %12s %12s %12s %12s %12s %6.1f%%\n",
			p.Phase, p.Count,
			total.Round(time.Microsecond),
			secs(p.Mean).Round(time.Microsecond),
			secs(p.P50).Round(time.Microsecond),
			secs(p.P95).Round(time.Microsecond),
			secs(p.Max).Round(time.Microsecond),
			share)
	}
	if totalWall > 0 {
		fmt.Fprintf(&b, "  attributed %s of %s iteration wall time (%.1f%%)\n",
			attributed.Round(time.Microsecond), totalWall.Round(time.Microsecond),
			float64(attributed)/float64(totalWall)*100)
	} else {
		fmt.Fprintf(&b, "  attributed %s across %d phases (no iteration root histogram)\n",
			attributed.Round(time.Microsecond), len(phases))
	}
	b.WriteString(formatScoreSkipLine(r))
	b.WriteString(formatBlockCacheLine(r))
	return b.String()
}

// formatScoreSkipLine summarizes the incremental rescorer's effectiveness:
// the share of symbolic-point scoring work the exact delta rule (or the
// bounded-staleness knob) skipped. It renders nothing when no cell was
// ever skipped, so legacy and full-rescore runs keep the summary
// unchanged.
func formatScoreSkipLine(r *Registry) string {
	s := r.Snapshot()
	scored := s.Counters["uei_score_scored_cells_total"]
	skipped := s.Counters["uei_score_skipped_cells_total"]
	if skipped == 0 {
		return ""
	}
	total := scored + skipped
	return fmt.Sprintf("Score skipping: %.1f%% of cells skipped (%d skipped / %d total) by exact incremental rescoring\n",
		float64(skipped)/float64(total)*100, skipped, total)
}

// formatBlockCacheLine summarizes the shared block cache's effectiveness
// (hit rate, coalesced loads, evictions, resident bytes) when one was
// active during the run; it renders nothing otherwise, so cacheless runs
// keep the summary unchanged.
func formatBlockCacheLine(r *Registry) string {
	s := r.Snapshot()
	hits := s.Counters["blockcache_hits_total"]
	misses := s.Counters["blockcache_misses_total"]
	lookups := hits + misses
	if lookups == 0 {
		return ""
	}
	return fmt.Sprintf("Block cache: %.1f%% hit rate (%d hits / %d lookups), %d coalesced, %d evictions, %d bytes resident\n",
		float64(hits)/float64(lookups)*100, hits, lookups,
		s.Counters["blockcache_coalesced_total"],
		s.Counters["blockcache_evictions_total"],
		int64(s.Gauges["blockcache_resident_bytes"]))
}

// secs converts a float64 second count to a Duration.
func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
