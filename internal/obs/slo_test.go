package obs

import (
	"math"
	"testing"
	"time"
)

func TestSLODefaults(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(reg, 0, 0)
	if s.Budget() != DefaultSLOBudget {
		t.Errorf("budget = %v, want %v", s.Budget(), DefaultSLOBudget)
	}
	if v := reg.Gauge("uei_slo_budget_seconds").Value(); v != DefaultSLOBudget.Seconds() {
		t.Errorf("budget gauge = %v", v)
	}
}

// TestSLOPercentilesEdgeCases pins the nearest-rank convention at the two
// degenerate window sizes the ISSUE calls out: zero samples (all zero) and
// one sample (every percentile is that sample).
func TestSLOPercentilesEdgeCases(t *testing.T) {
	s := NewSLO(nil, 0, 0)
	p50, p95, p99 := s.Percentiles()
	if p50 != 0 || p95 != 0 || p99 != 0 {
		t.Errorf("empty window percentiles = %v %v %v, want all 0", p50, p95, p99)
	}

	s.ObserveStep(100*time.Millisecond, nil)
	p50, p95, p99 = s.Percentiles()
	if p50 != 0.1 || p95 != 0.1 || p99 != 0.1 {
		t.Errorf("one-sample percentiles = %v %v %v, want all 0.1", p50, p95, p99)
	}
}

func TestSLOPercentilesSpread(t *testing.T) {
	s := NewSLO(nil, 0, 100)
	for i := 1; i <= 100; i++ {
		s.ObserveStep(time.Duration(i)*time.Millisecond, nil)
	}
	p50, p95, p99 := s.Percentiles()
	if math.Abs(p50-0.050) > 1e-9 || math.Abs(p95-0.095) > 1e-9 || math.Abs(p99-0.099) > 1e-9 {
		t.Errorf("percentiles = %v %v %v, want 0.050 0.095 0.099", p50, p95, p99)
	}
}

// TestSLOWindowWrap checks the ring discards the oldest samples: after
// overwriting a window of slow steps with fast ones, the percentiles must
// reflect only the fast ones.
func TestSLOWindowWrap(t *testing.T) {
	s := NewSLO(nil, 0, 4)
	for i := 0; i < 4; i++ {
		s.ObserveStep(time.Second, nil)
	}
	for i := 0; i < 4; i++ {
		s.ObserveStep(10*time.Millisecond, nil)
	}
	p50, p95, p99 := s.Percentiles()
	if p50 != 0.01 || p95 != 0.01 || p99 != 0.01 {
		t.Errorf("post-wrap percentiles = %v %v %v, want all 0.01", p50, p95, p99)
	}
}

// TestSLOViolationAttribution checks the violation counter and that a
// violating step's phase durations land on the per-phase attribution
// gauges — and that compliant steps attribute nothing.
func TestSLOViolationAttribution(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(reg, 50*time.Millisecond, 0)

	s.ObserveStep(40*time.Millisecond, map[string]time.Duration{
		PhaseScore: 35 * time.Millisecond,
	})
	if s.Violations() != 0 || s.Steps() != 1 {
		t.Fatalf("violations=%d steps=%d after compliant step", s.Violations(), s.Steps())
	}
	if v := reg.Gauge(`slo_violation_phase_seconds{phase="score"}`).Value(); v != 0 {
		t.Errorf("compliant step attributed %v", v)
	}

	s.ObserveStep(100*time.Millisecond, map[string]time.Duration{
		PhaseScore: 60 * time.Millisecond,
		PhaseLoad:  30 * time.Millisecond,
	})
	if s.Violations() != 1 || s.Steps() != 2 {
		t.Fatalf("violations=%d steps=%d after violating step", s.Violations(), s.Steps())
	}
	if v := reg.Gauge(`slo_violation_phase_seconds{phase="score"}`).Value(); math.Abs(v-0.06) > 1e-9 {
		t.Errorf("score attribution = %v, want 0.06", v)
	}
	if v := reg.Gauge(`slo_violation_phase_seconds{phase="load"}`).Value(); math.Abs(v-0.03) > 1e-9 {
		t.Errorf("load attribution = %v, want 0.03", v)
	}
	if c := reg.Counter("slo_violations_total").Value(); c != 1 {
		t.Errorf("slo_violations_total = %d", c)
	}
}

func TestSLONilSafety(t *testing.T) {
	var s *SLO
	s.ObserveStep(time.Second, nil) // must not panic
	if s.Budget() != 0 || s.Violations() != 0 || s.Steps() != 0 {
		t.Error("nil SLO accessors must return zero values")
	}
	p50, p95, p99 := s.Percentiles()
	if p50 != 0 || p95 != 0 || p99 != 0 {
		t.Error("nil SLO percentiles must be zero")
	}
}
