package obs

import (
	"strings"
	"testing"
	"time"
)

func summaryFixture() *Registry {
	r := NewRegistry()
	r.Histogram(PhaseHistName(PhaseScore), nil).ObserveDuration(30 * time.Millisecond)
	r.Histogram(PhaseHistName(PhaseScore), nil).ObserveDuration(50 * time.Millisecond)
	r.Histogram(PhaseHistName(PhaseLoad), nil).ObserveDuration(15 * time.Millisecond)
	r.Histogram(IterationHistName, nil).ObserveDuration(100 * time.Millisecond)
	// A histogram outside the phase naming contract must not appear.
	r.Histogram("prefetch_load_seconds", nil).ObserveDuration(time.Second)
	return r
}

func TestPhaseBreakdown(t *testing.T) {
	phases, wall := PhaseBreakdown(summaryFixture())
	if len(phases) != 2 {
		t.Fatalf("phases = %+v, want score and load only", phases)
	}
	// Sorted by descending total: score (80ms) before load (15ms).
	if phases[0].Phase != PhaseScore || phases[1].Phase != PhaseLoad {
		t.Errorf("order = %s, %s", phases[0].Phase, phases[1].Phase)
	}
	if phases[0].Count != 2 || phases[1].Count != 1 {
		t.Errorf("counts = %d, %d", phases[0].Count, phases[1].Count)
	}
	if wall != 100*time.Millisecond {
		t.Errorf("wall = %v", wall)
	}
}

func TestFormatSummary(t *testing.T) {
	out := FormatSummary(summaryFixture())
	for _, want := range []string{"phase", "score", "load", "95.0%", "100ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "prefetch_load") {
		t.Errorf("non-phase histogram leaked into summary:\n%s", out)
	}
}

func TestFormatSummaryEmpty(t *testing.T) {
	out := FormatSummary(NewRegistry())
	if !strings.Contains(out, "no phase histograms") {
		t.Errorf("empty summary = %q", out)
	}
	// Nil registry must not panic either.
	if got := FormatSummary(nil); !strings.Contains(got, "no phase histograms") {
		t.Errorf("nil summary = %q", got)
	}
}

func TestFormatSummaryBlockCacheLine(t *testing.T) {
	// Without cache activity the summary stays exactly as before.
	if out := FormatSummary(summaryFixture()); strings.Contains(out, "Block cache") {
		t.Errorf("cacheless summary mentions the block cache:\n%s", out)
	}
	r := summaryFixture()
	r.Counter("blockcache_hits_total").Add(75)
	r.Counter("blockcache_misses_total").Add(25)
	r.Counter("blockcache_coalesced_total").Add(7)
	r.Counter("blockcache_evictions_total").Add(3)
	r.Gauge("blockcache_resident_bytes").SetInt(4096)
	out := FormatSummary(r)
	for _, want := range []string{
		"Block cache: 75.0% hit rate (75 hits / 100 lookups)",
		"7 coalesced", "3 evictions", "4096 bytes resident",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatSummaryNoIterationRoot(t *testing.T) {
	r := NewRegistry()
	r.Histogram(PhaseHistName(PhaseScore), nil).ObserveDuration(10 * time.Millisecond)
	out := FormatSummary(r)
	if !strings.Contains(out, "no iteration root histogram") {
		t.Errorf("summary without root = %q", out)
	}
	// Shares fall back to the phase-sum denominator: one phase owns 100%.
	if !strings.Contains(out, "100.0%") {
		t.Errorf("fallback share missing:\n%s", out)
	}
}
