package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// WriteJSON emits the registry snapshot as an expvar-style JSON document
// (the /debug/vars payload).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// metricBase strips a trailing {label="..."} block from a registry name,
// returning the Prometheus family name. Labeled series are registered
// under names like `shard_skip_total{shard="3"}`; the family gets one
// # TYPE line shared by all its series.
func metricBase(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus emits the registry in the Prometheus text exposition
// format (the /metrics payload): counters and gauges as single samples
// (grouped into families when registered with {label=...} suffixes),
// histograms as cumulative _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	typed := map[string]bool{}
	for _, name := range sortedKeys(s.Counters) {
		base := metricBase(name)
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", base); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		base := metricBase(name)
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", base); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name,
			strconv.FormatFloat(s.Gauges[name], 'g', -1, 64)); err != nil {
			return err
		}
	}
	var bounds map[string][]float64
	if len(s.Histograms) > 0 {
		bounds = r.histBounds()
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		bs := bounds[name]
		for i, cum := range h.Buckets {
			le := "+Inf"
			if i < len(bs) {
				le = strconv.FormatFloat(bs[i], 'g', -1, 64)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name,
			strconv.FormatFloat(h.Sum, 'g', -1, 64), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// histBounds snapshots every histogram's bucket bounds for export.
func (r *Registry) histBounds() map[string][]float64 {
	out := map[string][]float64{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, h := range r.hists {
		out[name] = h.Bounds()
	}
	return out
}

// Handler serves the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// MetricsServer is a running debug/metrics HTTP endpoint.
type MetricsServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound address (useful with ":0").
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close shuts the server down immediately.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// Serve starts an HTTP server on addr exposing:
//
//	/metrics     Prometheus text format
//	/debug/vars  expvar-style JSON snapshot
//	/debug/pprof net/http/pprof profiles
//
// It returns once the listener is bound; serving continues in the
// background until Close.
func Serve(addr string, r *Registry) (*MetricsServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{srv: srv, ln: ln}, nil
}
