package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters only go up
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Error("zero gauge should read 0")
	}
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Errorf("Value = %g", g.Value())
	}
	g.SetInt(-2)
	if g.Value() != -2 {
		t.Errorf("Value = %g", g.Value())
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Error("nil counter must read 0")
	}
	var g *Gauge
	g.Set(1)
	g.SetInt(1)
	if g.Value() != 0 {
		t.Error("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram must snapshot empty")
	}
	if h.Bounds() != nil {
		t.Error("nil histogram bounds must be nil")
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Error("nil registry must hand out nil instruments")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// A value equal to a bound lands in that bound's bucket (le semantics).
	for _, v := range []float64{0.5, 1} { // bucket le=1
		h.Observe(v)
	}
	h.Observe(2)          // bucket le=2, exactly on the boundary
	h.Observe(3)          // bucket le=4
	h.Observe(9)          // overflow
	h.Observe(-1)         // clamps to 0 -> bucket le=1
	h.Observe(math.NaN()) // dropped entirely
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6 (NaN dropped)", s.Count)
	}
	// Buckets are cumulative: le=1, le=2, le=4, +Inf.
	want := []int64{3, 4, 5, 6}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Errorf("bucket[%d] = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if s.Max != 9 {
		t.Errorf("Max = %g", s.Max)
	}
	if got, want := s.Sum, 0.5+1+2+3+9+0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Sum = %g, want %g", got, want)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40, 50, 100})
	// 100 observations, uniformly one per unit in (0,100].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Mean != 50.5 {
		t.Errorf("Mean = %g", s.Mean)
	}
	// Nearest-rank percentiles report the containing bucket's upper bound.
	if s.P50 != 50 {
		t.Errorf("P50 = %g, want 50", s.P50)
	}
	if s.P95 != 100 {
		t.Errorf("P95 = %g, want 100", s.P95)
	}
	if s.P99 != 100 {
		t.Errorf("P99 = %g, want 100", s.P99)
	}
	if s.Max != 100 {
		t.Errorf("Max = %g", s.Max)
	}
}

func TestHistogramPercentileClampsToMax(t *testing.T) {
	h := newHistogram(DefaultLatencyBuckets())
	// One tiny sample: the bucket upper bound (50µs) exceeds the observed
	// max, so percentiles must clamp to the max actually seen.
	h.Observe(10e-6)
	s := h.Snapshot()
	if s.P50 != 10e-6 || s.P99 != 10e-6 {
		t.Errorf("percentiles %g/%g should clamp to observed max 10e-6", s.P50, s.P99)
	}
}

func TestHistogramOverflowPercentile(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(5)
	h.Observe(7)
	s := h.Snapshot()
	// Both samples overflow the last bound; the estimate degrades to max.
	if s.P50 != 7 || s.P99 != 7 {
		t.Errorf("overflow percentiles = %g/%g, want 7", s.P50, s.P99)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := newHistogram(DefaultLatencyBuckets())
	h.ObserveDuration(250 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || math.Abs(s.Sum-0.25) > 1e-12 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name must return the same counter")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same name must return the same gauge")
	}
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{5, 6, 7}) // later bounds ignored
	if h1 != h2 {
		t.Error("same name must return the same histogram")
	}
	if got := h1.Bounds(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("bounds = %v, want the first registration's", got)
	}
	if got := r.Histogram("defaults", nil).Bounds(); len(got) != len(DefaultLatencyBuckets()) {
		t.Errorf("nil bounds should select the default buckets, got %v", got)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	s := r.Snapshot()
	if s.Counters["c"] != 3 || s.Gauges["g"] != 1.5 || s.Histograms["h"].Count != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	const goroutines, each = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h", []float64{0.5, 1})
			g := r.Gauge("g")
			for j := 0; j < each; j++ {
				c.Inc()
				h.Observe(float64(j%3) * 0.4)
				g.SetInt(int64(j))
				if j%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != goroutines*each {
		t.Errorf("counter = %d, want %d", s.Counters["c"], goroutines*each)
	}
	h := s.Histograms["h"]
	if h.Count != goroutines*each {
		t.Errorf("histogram count = %d", h.Count)
	}
	// sum = goroutines * sum over j of (j%3)*0.4, accumulated in the same
	// order the observers computed it.
	var perGoroutine float64
	for j := 0; j < each; j++ {
		perGoroutine += float64(j%3) * 0.4
	}
	want := float64(goroutines) * perGoroutine
	if math.Abs(h.Sum-want) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g (atomic CAS accumulation lost updates)", h.Sum, want)
	}
	if h.Buckets[len(h.Buckets)-1] != h.Count {
		t.Error("cumulative buckets must end at total count")
	}
}
