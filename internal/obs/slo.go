package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// DefaultSLOBudget is the paper's interactivity bound: every exploration
// step should complete within ~500 ms (DESIGN.md §2).
const DefaultSLOBudget = 500 * time.Millisecond

// DefaultSLOWindow is the rolling-window size for step-latency
// percentiles: large enough to smooth one slow step, small enough that
// the percentiles track the current workload, not the whole run.
const DefaultSLOWindow = 512

// SLO accounts step latencies against the interactivity budget. It keeps
// a rolling window of recent step latencies for p50/p95/p99 gauges, a
// violation counter, and — for violating steps — accumulates per-phase
// durations so the budget overrun is attributable to a phase without
// reading traces. A nil *SLO no-ops everywhere.
type SLO struct {
	budget time.Duration
	reg    *Registry

	mu   sync.Mutex
	ring []float64 // step latencies in seconds, circular
	next int
	n    int

	cSteps *Counter
	cViol  *Counter
	gP50   *Gauge
	gP95   *Gauge
	gP99   *Gauge
}

// NewSLO builds an accountant on reg. budget<=0 selects DefaultSLOBudget;
// window<=0 selects DefaultSLOWindow. A nil registry still yields a
// working accountant (percentiles queryable, no exported metrics).
func NewSLO(reg *Registry, budget time.Duration, window int) *SLO {
	if budget <= 0 {
		budget = DefaultSLOBudget
	}
	if window <= 0 {
		window = DefaultSLOWindow
	}
	s := &SLO{
		budget: budget,
		reg:    reg,
		ring:   make([]float64, window),
		cSteps: reg.Counter("uei_slo_steps_total"),
		cViol:  reg.Counter("slo_violations_total"),
		gP50:   reg.Gauge("uei_step_latency_p50_seconds"),
		gP95:   reg.Gauge("uei_step_latency_p95_seconds"),
		gP99:   reg.Gauge("uei_step_latency_p99_seconds"),
	}
	reg.Gauge("uei_slo_budget_seconds").Set(budget.Seconds())
	return s
}

// Budget returns the per-step budget (0 for a nil accountant).
func (s *SLO) Budget() time.Duration {
	if s == nil {
		return 0
	}
	return s.budget
}

// ObserveStep records one completed step. phases is the step trace's
// per-phase durations (Trace.PhaseTotals); it is only consulted when the
// step violates the budget, to attribute the overrun.
func (s *SLO) ObserveStep(d time.Duration, phases map[string]time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ring[s.next] = d.Seconds()
	s.next = (s.next + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	p50, p95, p99 := s.percentilesLocked()
	s.mu.Unlock()

	s.cSteps.Inc()
	s.gP50.Set(p50)
	s.gP95.Set(p95)
	s.gP99.Set(p99)
	if d > s.budget {
		s.cViol.Inc()
		for phase, pd := range phases {
			s.reg.Gauge(fmt.Sprintf("slo_violation_phase_seconds{phase=%q}", phase)).Add(pd.Seconds())
		}
	}
}

// Percentiles returns the rolling-window p50/p95/p99 step latencies in
// seconds. With zero samples all three are 0; with one sample all three
// are that sample (nearest-rank).
func (s *SLO) Percentiles() (p50, p95, p99 float64) {
	if s == nil {
		return 0, 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.percentilesLocked()
}

// percentilesLocked computes nearest-rank percentiles over the current
// window contents.
func (s *SLO) percentilesLocked() (p50, p95, p99 float64) {
	if s.n == 0 {
		return 0, 0, 0
	}
	sorted := make([]float64, s.n)
	copy(sorted, s.ring[:s.n])
	sort.Float64s(sorted)
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(s.n))) - 1
		if i < 0 {
			i = 0
		}
		if i >= s.n {
			i = s.n - 1
		}
		return sorted[i]
	}
	return rank(0.50), rank(0.95), rank(0.99)
}

// Violations returns the total violation count so far (0 for nil).
func (s *SLO) Violations() int64 {
	if s == nil {
		return 0
	}
	return s.cViol.Value()
}

// Steps returns the total observed step count so far (0 for nil).
func (s *SLO) Steps() int64 {
	if s == nil {
		return 0
	}
	return s.cSteps.Value()
}
