// Package memcache implements UEI's in-memory data management (§3.1
// components 3-4 and §3.2): a hard byte budget standing in for the
// experiment's restricted memory footprint (~1% of the dataset), a uniform
// row-id sampler for the unlabeled cache U (Algorithm 2 line 12), and the
// cache itself, which holds the uniform sample plus at most one loaded
// uncertain region at a time.
package memcache

import (
	"errors"
	"fmt"
	"sync"

	"github.com/uei-db/uei/internal/obs"
)

// ErrBudgetExceeded is returned when a reservation would push usage past
// the configured capacity.
var ErrBudgetExceeded = errors.New("memcache: memory budget exceeded")

// Budget is a thread-safe byte-budget ledger. The experiments use it to
// enforce the paper's "restricted the memory footprint ... to be within
// 400MB, ~1% of the entire dataset" constraint at scaled-down size.
type Budget struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	peak     int64

	// Resident-bytes gauges (nil until Instrument; nil-safe no-ops).
	gUsed *obs.Gauge
	gPeak *obs.Gauge
	gCap  *obs.Gauge
}

// Instrument publishes the ledger as gauges: memcache_used_bytes and
// memcache_peak_bytes track reservations live, memcache_budget_bytes is
// the fixed capacity they are judged against.
func (b *Budget) Instrument(reg *obs.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gUsed = reg.Gauge("memcache_used_bytes")
	b.gPeak = reg.Gauge("memcache_peak_bytes")
	b.gCap = reg.Gauge("memcache_budget_bytes")
	b.gCap.SetInt(b.capacity)
	b.gUsed.SetInt(b.used)
	b.gPeak.SetInt(b.peak)
}

// NewBudget creates a ledger with the given capacity in bytes.
func NewBudget(capacity int64) (*Budget, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("memcache: budget capacity %d must be positive", capacity)
	}
	return &Budget{capacity: capacity}, nil
}

// Reserve claims n bytes or fails with ErrBudgetExceeded without claiming
// anything.
func (b *Budget) Reserve(n int64) error {
	if n < 0 {
		return fmt.Errorf("memcache: negative reservation %d", n)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.used+n > b.capacity {
		return fmt.Errorf("%w: %d used + %d requested > %d capacity", ErrBudgetExceeded, b.used, n, b.capacity)
	}
	b.used += n
	if b.used > b.peak {
		b.peak = b.used
		b.gPeak.SetInt(b.peak)
	}
	b.gUsed.SetInt(b.used)
	return nil
}

// Release returns n bytes to the ledger. Releasing more than is used is a
// programming error and panics, because it means accounting has diverged
// from reality.
func (b *Budget) Release(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("memcache: negative release %d", n))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if n > b.used {
		panic(fmt.Sprintf("memcache: releasing %d bytes with only %d used", n, b.used))
	}
	b.used -= n
	b.gUsed.SetInt(b.used)
}

// Resize changes the ledger's capacity in place. Growing takes effect
// immediately. Shrinking below current usage is allowed and evicts
// nothing here: every further Reserve fails with ErrBudgetExceeded until
// usage drains under the new capacity — the backpressure the serving
// layer's arbiter relies on when it re-partitions one fixed global budget
// across a changing set of live sessions.
func (b *Budget) Resize(capacity int64) error {
	if capacity <= 0 {
		return fmt.Errorf("memcache: budget capacity %d must be positive", capacity)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.capacity = capacity
	b.gCap.SetInt(b.capacity)
	return nil
}

// Used returns the current usage in bytes.
func (b *Budget) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Capacity returns the configured capacity in bytes.
func (b *Budget) Capacity() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity
}

// Available returns the unreserved byte count.
func (b *Budget) Available() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity - b.used
}

// Peak returns the high-water mark of usage, for experiment reports.
func (b *Budget) Peak() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// TupleBytes estimates the in-memory footprint of one cached tuple: the
// float64 payload plus map-entry and slice-header overhead. All cache
// accounting uses this single estimator so budgets are comparable across
// components.
func TupleBytes(dims int) int64 {
	const overhead = 48 // map bucket share + slice header + id
	return int64(dims)*8 + overhead
}
