package memcache

import (
	"fmt"
	"math/rand"
	"sort"
)

// SampleIDs draws k distinct row ids uniformly from [0, n) using Floyd's
// algorithm, returning them sorted ascending. It backs Algorithm 2 line 12,
// "U <- sample(D, γ)". When k >= n it returns every id.
func SampleIDs(n, k int, seed int64) ([]uint32, error) {
	if n < 0 || k < 0 {
		return nil, fmt.Errorf("memcache: negative sample parameters n=%d k=%d", n, k)
	}
	if n == 0 || k == 0 {
		return nil, nil
	}
	if k >= n {
		out := make([]uint32, n)
		for i := range out {
			out[i] = uint32(i)
		}
		return out, nil
	}
	rng := rand.New(rand.NewSource(seed))
	chosen := make(map[uint32]bool, k)
	for j := n - k; j < n; j++ {
		t := uint32(rng.Intn(j + 1))
		if chosen[t] {
			chosen[uint32(j)] = true
		} else {
			chosen[t] = true
		}
	}
	out := make([]uint32, 0, k)
	for id := range chosen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Reservoir maintains a uniform fixed-size sample over a stream of items of
// unknown length (classic Algorithm R). It is used where the row count is
// not known up front, e.g. sampling candidate rows while streaming chunks.
type Reservoir struct {
	k     int
	seen  int
	items []uint32
	rng   *rand.Rand
}

// NewReservoir creates a reservoir of capacity k.
func NewReservoir(k int, seed int64) (*Reservoir, error) {
	if k <= 0 {
		return nil, fmt.Errorf("memcache: reservoir capacity %d must be positive", k)
	}
	return &Reservoir{k: k, rng: rand.New(rand.NewSource(seed))}, nil
}

// Offer streams one item through the reservoir.
func (r *Reservoir) Offer(id uint32) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, id)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.k {
		r.items[j] = id
	}
}

// Seen returns how many items have been offered.
func (r *Reservoir) Seen() int { return r.seen }

// Items returns the current sample (aliased; callers must not modify).
func (r *Reservoir) Items() []uint32 { return r.items }
