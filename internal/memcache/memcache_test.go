package memcache

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBudgetBasics(t *testing.T) {
	if _, err := NewBudget(0); err == nil {
		t.Error("zero capacity should fail")
	}
	b, err := NewBudget(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Reserve(60); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 60 || b.Available() != 40 || b.Capacity() != 100 {
		t.Errorf("used=%d avail=%d cap=%d", b.Used(), b.Available(), b.Capacity())
	}
	if err := b.Reserve(50); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("want ErrBudgetExceeded, got %v", err)
	}
	if b.Used() != 60 {
		t.Error("failed reservation must not claim bytes")
	}
	b.Release(10)
	if b.Used() != 50 {
		t.Errorf("used=%d after release", b.Used())
	}
	if err := b.Reserve(50); err != nil {
		t.Errorf("exact fit should succeed: %v", err)
	}
	if b.Peak() != 100 {
		t.Errorf("peak=%d", b.Peak())
	}
	if err := b.Reserve(-1); err == nil {
		t.Error("negative reservation should fail")
	}
}

func TestBudgetOverReleasePanics(t *testing.T) {
	b, _ := NewBudget(10)
	b.Reserve(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-release")
		}
	}()
	b.Release(6)
}

func TestTupleBytes(t *testing.T) {
	if TupleBytes(5) != 5*8+48 {
		t.Errorf("TupleBytes(5) = %d", TupleBytes(5))
	}
	if TupleBytes(1) >= TupleBytes(10) {
		t.Error("TupleBytes must grow with dims")
	}
}

func TestSampleIDs(t *testing.T) {
	ids, err := SampleIDs(100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("len = %d", len(ids))
	}
	seen := map[uint32]bool{}
	for i, id := range ids {
		if id >= 100 {
			t.Errorf("id %d out of range", id)
		}
		if seen[id] {
			t.Errorf("duplicate id %d", id)
		}
		seen[id] = true
		if i > 0 && ids[i-1] >= id {
			t.Error("ids not sorted ascending")
		}
	}
	// k >= n returns everything.
	all, err := SampleIDs(5, 10, 1)
	if err != nil || len(all) != 5 {
		t.Errorf("k>=n: %v, %v", all, err)
	}
	// Edge cases.
	if ids, err := SampleIDs(0, 5, 1); err != nil || ids != nil {
		t.Error("n=0 should return nil")
	}
	if ids, err := SampleIDs(5, 0, 1); err != nil || ids != nil {
		t.Error("k=0 should return nil")
	}
	if _, err := SampleIDs(-1, 5, 1); err == nil {
		t.Error("negative n should fail")
	}
}

func TestSampleIDsDeterministic(t *testing.T) {
	a, _ := SampleIDs(1000, 50, 7)
	b, _ := SampleIDs(1000, 50, 7)
	c, _ := SampleIDs(1000, 50, 8)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different samples")
		}
		if i < len(c) && a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical samples")
	}
}

func TestQuickSampleIDsUniform(t *testing.T) {
	// Property: sampled ids are distinct, in range, sorted, correct count.
	f := func(seed int64, nRaw, kRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw % 600)
		ids, err := SampleIDs(n, k, seed)
		if err != nil {
			return false
		}
		wantLen := k
		if k > n {
			wantLen = n
		}
		if k == 0 {
			return ids == nil
		}
		if len(ids) != wantLen {
			return false
		}
		for i, id := range ids {
			if int(id) >= n {
				return false
			}
			if i > 0 && ids[i-1] >= id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSampleIDsCoverage(t *testing.T) {
	// Statistical: each id should be chosen roughly k/n of the time.
	counts := make([]int, 20)
	const trials = 2000
	for s := 0; s < trials; s++ {
		ids, _ := SampleIDs(20, 5, int64(s))
		for _, id := range ids {
			counts[id]++
		}
	}
	want := float64(trials) * 5 / 20
	for id, n := range counts {
		if math.Abs(float64(n)-want) > want*0.25 {
			t.Errorf("id %d chosen %d times, want ~%.0f", id, n, want)
		}
	}
}

func TestReservoir(t *testing.T) {
	if _, err := NewReservoir(0, 1); err == nil {
		t.Error("zero capacity should fail")
	}
	r, err := NewReservoir(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		r.Offer(uint32(i))
	}
	if r.Seen() != 1000 {
		t.Errorf("Seen = %d", r.Seen())
	}
	items := r.Items()
	if len(items) != 10 {
		t.Fatalf("len = %d", len(items))
	}
	seen := map[uint32]bool{}
	for _, id := range items {
		if id >= 1000 || seen[id] {
			t.Errorf("bad reservoir item %d", id)
		}
		seen[id] = true
	}
	// Fewer offers than capacity keeps everything.
	r2, _ := NewReservoir(10, 3)
	for i := 0; i < 4; i++ {
		r2.Offer(uint32(i))
	}
	if len(r2.Items()) != 4 {
		t.Errorf("partial reservoir has %d items", len(r2.Items()))
	}
}

func newTestCache(t *testing.T, capacityTuples int) (*Cache, *Budget) {
	t.Helper()
	b, err := NewBudget(int64(capacityTuples) * TupleBytes(2))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	return c, b
}

func TestCacheValidation(t *testing.T) {
	b, _ := NewBudget(100)
	if _, err := NewCache(nil, 2); err == nil {
		t.Error("nil budget should fail")
	}
	if _, err := NewCache(b, 0); err == nil {
		t.Error("zero dims should fail")
	}
}

func TestCacheSampleAndBudget(t *testing.T) {
	c, b := newTestCache(t, 3)
	if err := c.AddSample(1, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSample(1, []float64{1, 1}); err != nil {
		t.Fatal(err) // duplicate is a no-op
	}
	if c.Len() != 1 || b.Used() != TupleBytes(2) {
		t.Errorf("len=%d used=%d", c.Len(), b.Used())
	}
	if err := c.AddSample(2, []float64{2, 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSample(3, []float64{3, 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSample(4, []float64{4, 4}); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("want budget error, got %v", err)
	}
	if err := c.AddSample(5, []float64{1}); err == nil {
		t.Error("dims mismatch should fail")
	}
	row, ok := c.Get(2)
	if !ok || row[0] != 2 {
		t.Error("Get failed")
	}
	if _, ok := c.Get(99); ok {
		t.Error("Get(99) should miss")
	}
}

func TestCacheRegionSwap(t *testing.T) {
	c, b := newTestCache(t, 10)
	c.AddSample(1, []float64{1, 1})
	if c.RegionCell() != NoRegion {
		t.Error("fresh cache should have no region")
	}
	err := c.SetRegion(7, []uint32{10, 11, 1}, [][]float64{{10, 10}, {11, 11}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if c.RegionCell() != 7 {
		t.Errorf("RegionCell = %d", c.RegionCell())
	}
	// id 1 overlaps the sample: not double-counted.
	if c.RegionLen() != 2 || c.Len() != 3 {
		t.Errorf("regionLen=%d len=%d", c.RegionLen(), c.Len())
	}
	usedAfterFirst := b.Used()
	if usedAfterFirst != 3*TupleBytes(2) {
		t.Errorf("used=%d, want %d", usedAfterFirst, 3*TupleBytes(2))
	}
	// Swapping regions releases the old one.
	err = c.SetRegion(8, []uint32{20}, [][]float64{{20, 20}})
	if err != nil {
		t.Fatal(err)
	}
	if c.RegionCell() != 8 || c.RegionLen() != 1 {
		t.Errorf("cell=%d regionLen=%d", c.RegionCell(), c.RegionLen())
	}
	if b.Used() != 2*TupleBytes(2) {
		t.Errorf("used=%d after swap", b.Used())
	}
	c.DropRegion()
	if c.RegionCell() != NoRegion || c.RegionLen() != 0 || b.Used() != TupleBytes(2) {
		t.Error("DropRegion incomplete")
	}
}

func TestCacheRegionValidation(t *testing.T) {
	c, _ := newTestCache(t, 10)
	if err := c.SetRegion(1, []uint32{1}, nil); err == nil {
		t.Error("ids/rows mismatch should fail")
	}
	if err := c.SetRegion(-1, nil, nil); err == nil {
		t.Error("negative cell should fail")
	}
	if err := c.SetRegion(1, []uint32{1}, [][]float64{{1}}); err == nil {
		t.Error("dims mismatch should fail")
	}
}

func TestCacheRegionBudgetTruncation(t *testing.T) {
	c, _ := newTestCache(t, 2)
	ids := []uint32{1, 2, 3, 4}
	rows := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	err := c.SetRegion(5, ids, rows)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want budget error, got %v", err)
	}
	if c.RegionLen() != 2 {
		t.Errorf("truncated region has %d rows, want 2", c.RegionLen())
	}
}

func TestCacheRemoveLabeled(t *testing.T) {
	c, b := newTestCache(t, 10)
	c.AddSample(1, []float64{1, 1})
	c.SetRegion(3, []uint32{2}, [][]float64{{2, 2}})
	c.Remove(1)
	c.Remove(2)
	c.Remove(2) // idempotent
	if c.Len() != 0 || b.Used() != 0 {
		t.Errorf("len=%d used=%d after removals", c.Len(), b.Used())
	}
	// Labeled tuples never come back.
	if err := c.AddSample(1, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Error("labeled tuple resurrected via AddSample")
	}
	if err := c.SetRegion(4, []uint32{2}, [][]float64{{2, 2}}); err != nil {
		t.Fatal(err)
	}
	if c.RegionLen() != 0 {
		t.Error("labeled tuple resurrected via SetRegion")
	}
}

func TestCacheEachSorted(t *testing.T) {
	c, _ := newTestCache(t, 10)
	c.AddSample(5, []float64{5, 5})
	c.AddSample(1, []float64{1, 1})
	c.SetRegion(2, []uint32{3}, [][]float64{{3, 3}})
	var got []uint32
	c.EachSorted(func(id uint32, row []float64) bool {
		got = append(got, id)
		return true
	})
	want := []uint32{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	c.EachSorted(func(uint32, []float64) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
	n = 0
	c.Each(func(uint32, []float64) bool {
		n++
		return true
	})
	if n != 3 {
		t.Errorf("Each visited %d", n)
	}
}

func TestQuickCacheBudgetInvariant(t *testing.T) {
	// Property: budget usage always equals resident tuples x TupleBytes.
	f := func(ops []uint16) bool {
		b, _ := NewBudget(1 << 30)
		c, _ := NewCache(b, 2)
		for _, op := range ops {
			id := uint32(op % 64)
			switch op % 4 {
			case 0:
				c.AddSample(id, []float64{float64(id), 0})
			case 1:
				c.SetRegion(int(op%8), []uint32{id, id + 1}, [][]float64{{1, 1}, {2, 2}})
			case 2:
				c.Remove(id)
			case 3:
				c.DropRegion()
			}
			if b.Used() != int64(c.Len())*TupleBytes(2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
