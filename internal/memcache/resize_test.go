package memcache

import (
	"errors"
	"testing"
)

// TestBudgetResize: shrinking below usage evicts nothing but refuses new
// reservations until usage drains; growing lifts the ceiling immediately.
func TestBudgetResize(t *testing.T) {
	b, err := NewBudget(1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Reserve(800); err != nil {
		t.Fatal(err)
	}

	// Shrink below current usage: allowed, nothing reclaimed here.
	if err := b.Resize(500); err != nil {
		t.Fatal(err)
	}
	if got := b.Capacity(); got != 500 {
		t.Fatalf("Capacity = %d, want 500", got)
	}
	if got := b.Used(); got != 800 {
		t.Fatalf("Used = %d, want 800 (resize must not evict)", got)
	}
	if b.Available() >= 0 {
		t.Fatalf("Available = %d, want negative while over-committed", b.Available())
	}
	if err := b.Reserve(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Reserve while over-committed: want ErrBudgetExceeded, got %v", err)
	}

	// Draining under the new capacity restores admission.
	b.Release(400)
	if err := b.Reserve(50); err != nil {
		t.Fatalf("Reserve after draining: %v", err)
	}

	// Growing takes effect immediately.
	if err := b.Resize(2000); err != nil {
		t.Fatal(err)
	}
	if err := b.Reserve(1500); err != nil {
		t.Fatalf("Reserve after growing: %v", err)
	}

	if err := b.Resize(0); err == nil {
		t.Error("Resize(0) should fail")
	}
}
