package memcache

import (
	"fmt"
	"sort"
)

// NoRegion is the RegionCell value when no uncertain region is resident.
const NoRegion = -1

// Cache is UEI's in-memory unlabeled set U: a uniform base sample that
// stays resident for the whole exploration, plus a bounded set of loaded
// uncertain regions. §3.2 fixes the default at one resident region ("by
// default UEI kept only one uncertain data region g*_i in the memory at
// any given time"); SetMaxRegions raises the bound for deployments with
// spare budget, evicting the least recently used region first. Labeled
// tuples are evicted (U <- U - {x}), and every byte held is accounted
// against the shared Budget.
//
// Cache is not safe for concurrent use; the IDE engine owns it from a
// single goroutine and the prefetcher hands regions over via channels.
type Cache struct {
	budget *Budget
	dims   int

	sample map[uint32][]float64
	// regions maps a resident grid cell to its rows.
	regions map[int]map[uint32][]float64
	// lru lists resident cells, least recently used first.
	lru []int
	// maxRegions bounds len(regions); at least 1.
	maxRegions int
	// labeled records evicted ids so re-loaded regions do not resurrect
	// already-labeled tuples.
	labeled map[uint32]bool
}

// NewCache creates an empty cache accounting against budget, holding at
// most one region (the paper's default).
func NewCache(budget *Budget, dims int) (*Cache, error) {
	if budget == nil {
		return nil, fmt.Errorf("memcache: nil budget")
	}
	if dims <= 0 {
		return nil, fmt.Errorf("memcache: dims %d must be positive", dims)
	}
	return &Cache{
		budget:     budget,
		dims:       dims,
		sample:     make(map[uint32][]float64),
		regions:    make(map[int]map[uint32][]float64),
		maxRegions: 1,
		labeled:    make(map[uint32]bool),
	}, nil
}

// SetMaxRegions raises (or lowers) the resident-region bound, evicting
// least-recently-used regions if the new bound is already exceeded.
func (c *Cache) SetMaxRegions(n int) error {
	if n < 1 {
		return fmt.Errorf("memcache: max regions %d must be at least 1", n)
	}
	c.maxRegions = n
	for len(c.lru) > c.maxRegions {
		c.dropOldestRegion()
	}
	return nil
}

// MaxRegions returns the resident-region bound.
func (c *Cache) MaxRegions() int { return c.maxRegions }

// AddSample inserts one base-sample tuple, reserving budget for it.
// Already-present and already-labeled ids are no-ops.
func (c *Cache) AddSample(id uint32, row []float64) error {
	if len(row) != c.dims {
		return fmt.Errorf("memcache: row has %d dims, cache expects %d", len(row), c.dims)
	}
	if c.labeled[id] {
		return nil
	}
	if _, ok := c.sample[id]; ok {
		return nil
	}
	if err := c.budget.Reserve(TupleBytes(c.dims)); err != nil {
		return err
	}
	c.sample[id] = row
	return nil
}

// RegionCell returns the most recently installed region's grid cell, or
// NoRegion.
func (c *Cache) RegionCell() int {
	if len(c.lru) == 0 {
		return NoRegion
	}
	return c.lru[len(c.lru)-1]
}

// HasRegion reports whether the cell's region is resident, marking it most
// recently used when it is.
func (c *Cache) HasRegion(cell int) bool {
	if _, ok := c.regions[cell]; !ok {
		return false
	}
	c.touch(cell)
	return true
}

// ContainsRegion reports residency without updating recency (a read-only
// probe for prefetch planning).
func (c *Cache) ContainsRegion(cell int) bool {
	_, ok := c.regions[cell]
	return ok
}

// ResidentRegions returns the resident cells, least recently used first.
func (c *Cache) ResidentRegions() []int {
	return append([]int(nil), c.lru...)
}

// SetRegion installs a loaded region (Algorithm 2 lines 15/19-20),
// evicting least-recently-used regions beyond the bound. Rows already
// resident (in the sample or another region) or already labeled are
// skipped rather than double-counted. On budget exhaustion the region is
// installed partially (the rows that fit) and ErrBudgetExceeded is
// returned — the caller decides whether a partial region is acceptable.
func (c *Cache) SetRegion(cell int, ids []uint32, rows [][]float64) error {
	if len(ids) != len(rows) {
		return fmt.Errorf("memcache: %d ids for %d rows", len(ids), len(rows))
	}
	if cell < 0 {
		return fmt.Errorf("memcache: invalid region cell %d", cell)
	}
	if _, ok := c.regions[cell]; ok {
		c.dropRegion(cell) // reinstall fresh
	}
	for len(c.lru) >= c.maxRegions {
		c.dropOldestRegion()
	}
	region := make(map[uint32][]float64, len(ids))
	c.regions[cell] = region
	c.lru = append(c.lru, cell)
	for i, id := range ids {
		if len(rows[i]) != c.dims {
			return fmt.Errorf("memcache: region row %d has %d dims, cache expects %d", id, len(rows[i]), c.dims)
		}
		if c.labeled[id] {
			continue
		}
		if _, ok := c.Get(id); ok {
			continue
		}
		if err := c.budget.Reserve(TupleBytes(c.dims)); err != nil {
			return fmt.Errorf("memcache: region %d truncated after %d rows: %w", cell, len(region), err)
		}
		region[id] = rows[i]
	}
	return nil
}

// DropRegion evicts every resident region, releasing its budget
// (Algorithm 2 line 15, "drop any previously loaded data regions from U").
func (c *Cache) DropRegion() {
	for len(c.lru) > 0 {
		c.dropOldestRegion()
	}
}

// dropOldestRegion evicts the least recently used region.
func (c *Cache) dropOldestRegion() {
	if len(c.lru) == 0 {
		return
	}
	c.dropRegion(c.lru[0])
}

// dropRegion evicts one region by cell.
func (c *Cache) dropRegion(cell int) {
	region, ok := c.regions[cell]
	if !ok {
		return
	}
	for id := range region {
		c.budget.Release(TupleBytes(c.dims))
		delete(region, id)
	}
	delete(c.regions, cell)
	for i, v := range c.lru {
		if v == cell {
			c.lru = append(c.lru[:i], c.lru[i+1:]...)
			break
		}
	}
}

// touch marks a region most recently used.
func (c *Cache) touch(cell int) {
	for i, v := range c.lru {
		if v == cell {
			c.lru = append(append(c.lru[:i], c.lru[i+1:]...), cell)
			return
		}
	}
}

// Remove evicts a tuple after it was labeled (U <- U - {x}). It is
// idempotent.
func (c *Cache) Remove(id uint32) {
	if c.labeled[id] {
		return
	}
	c.labeled[id] = true
	if _, ok := c.sample[id]; ok {
		delete(c.sample, id)
		c.budget.Release(TupleBytes(c.dims))
	}
	for _, region := range c.regions {
		if _, ok := region[id]; ok {
			delete(region, id)
			c.budget.Release(TupleBytes(c.dims))
		}
	}
}

// Get returns the cached row for id, if resident.
func (c *Cache) Get(id uint32) ([]float64, bool) {
	if row, ok := c.sample[id]; ok {
		return row, true
	}
	for _, region := range c.regions {
		if row, ok := region[id]; ok {
			return row, true
		}
	}
	return nil, false
}

// Len returns the number of resident tuples.
func (c *Cache) Len() int {
	n := len(c.sample)
	for _, region := range c.regions {
		n += len(region)
	}
	return n
}

// SampleLen returns the number of resident base-sample tuples.
func (c *Cache) SampleLen() int { return len(c.sample) }

// RegionLen returns the number of resident region tuples across all
// regions.
func (c *Cache) RegionLen() int {
	n := 0
	for _, region := range c.regions {
		n += len(region)
	}
	return n
}

// Each visits every resident tuple (sample first, then regions) until fn
// returns false. Iteration order within each part is map order; use
// EachSorted for determinism.
func (c *Cache) Each(fn func(id uint32, row []float64) bool) {
	for id, row := range c.sample {
		if !fn(id, row) {
			return
		}
	}
	for _, region := range c.regions {
		for id, row := range region {
			if !fn(id, row) {
				return
			}
		}
	}
}

// EachSorted visits every resident tuple in ascending id order until fn
// returns false. The IDE engine uses it so argmax tie-breaking — and hence
// whole explorations — are deterministic for a fixed seed.
func (c *Cache) EachSorted(fn func(id uint32, row []float64) bool) {
	ids := make([]uint32, 0, c.Len())
	for id := range c.sample {
		ids = append(ids, id)
	}
	for _, region := range c.regions {
		for id := range region {
			if _, dup := c.sample[id]; !dup {
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		row, _ := c.Get(id)
		if !fn(id, row) {
			return
		}
	}
}
