package memcache

import (
	"testing"
	"testing/quick"
)

func TestSetMaxRegionsValidation(t *testing.T) {
	c, _ := newTestCache(t, 20)
	if err := c.SetMaxRegions(0); err == nil {
		t.Error("max regions 0 should fail")
	}
	if err := c.SetMaxRegions(3); err != nil {
		t.Fatal(err)
	}
	if c.MaxRegions() != 3 {
		t.Errorf("MaxRegions = %d", c.MaxRegions())
	}
}

func TestMultiRegionResidency(t *testing.T) {
	c, b := newTestCache(t, 20)
	if err := c.SetMaxRegions(2); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRegion(1, []uint32{10}, [][]float64{{1, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRegion(2, []uint32{20}, [][]float64{{2, 2}}); err != nil {
		t.Fatal(err)
	}
	if !c.ContainsRegion(1) || !c.ContainsRegion(2) {
		t.Fatal("both regions should be resident")
	}
	if c.RegionLen() != 2 || b.Used() != 2*TupleBytes(2) {
		t.Fatalf("regionLen=%d used=%d", c.RegionLen(), b.Used())
	}
	// Third region evicts the least recently used (cell 1).
	if err := c.SetRegion(3, []uint32{30}, [][]float64{{3, 3}}); err != nil {
		t.Fatal(err)
	}
	if c.ContainsRegion(1) {
		t.Error("cell 1 should have been evicted")
	}
	if !c.ContainsRegion(2) || !c.ContainsRegion(3) {
		t.Error("cells 2 and 3 should be resident")
	}
	if b.Used() != 2*TupleBytes(2) {
		t.Errorf("used=%d after eviction", b.Used())
	}
}

func TestMultiRegionLRUTouch(t *testing.T) {
	c, _ := newTestCache(t, 20)
	c.SetMaxRegions(2)
	c.SetRegion(1, []uint32{10}, [][]float64{{1, 1}})
	c.SetRegion(2, []uint32{20}, [][]float64{{2, 2}})
	// Touch cell 1 so cell 2 becomes the eviction victim.
	if !c.HasRegion(1) {
		t.Fatal("cell 1 resident")
	}
	c.SetRegion(3, []uint32{30}, [][]float64{{3, 3}})
	if !c.ContainsRegion(1) || c.ContainsRegion(2) {
		t.Errorf("LRU touch ignored: resident = %v", c.ResidentRegions())
	}
	// ContainsRegion must NOT touch.
	c2, _ := newTestCache(t, 20)
	c2.SetMaxRegions(2)
	c2.SetRegion(1, []uint32{10}, [][]float64{{1, 1}})
	c2.SetRegion(2, []uint32{20}, [][]float64{{2, 2}})
	c2.ContainsRegion(1)
	c2.SetRegion(3, []uint32{30}, [][]float64{{3, 3}})
	if c2.ContainsRegion(1) {
		t.Error("ContainsRegion must not refresh recency")
	}
}

func TestSetMaxRegionsShrinksResident(t *testing.T) {
	c, b := newTestCache(t, 20)
	c.SetMaxRegions(3)
	c.SetRegion(1, []uint32{10}, [][]float64{{1, 1}})
	c.SetRegion(2, []uint32{20}, [][]float64{{2, 2}})
	c.SetRegion(3, []uint32{30}, [][]float64{{3, 3}})
	if err := c.SetMaxRegions(1); err != nil {
		t.Fatal(err)
	}
	if got := c.ResidentRegions(); len(got) != 1 || got[0] != 3 {
		t.Errorf("resident after shrink = %v", got)
	}
	if b.Used() != TupleBytes(2) {
		t.Errorf("used=%d after shrink", b.Used())
	}
}

func TestMultiRegionRemoveAndReinstall(t *testing.T) {
	c, _ := newTestCache(t, 20)
	c.SetMaxRegions(2)
	c.SetRegion(1, []uint32{10, 11}, [][]float64{{1, 1}, {2, 2}})
	c.Remove(10)
	if c.RegionLen() != 1 {
		t.Fatalf("RegionLen = %d", c.RegionLen())
	}
	// Reinstalling the same cell replaces its content and still refuses
	// labeled rows.
	if err := c.SetRegion(1, []uint32{10, 11}, [][]float64{{1, 1}, {2, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(10); ok {
		t.Error("labeled row resurrected")
	}
	if _, ok := c.Get(11); !ok {
		t.Error("row 11 missing after reinstall")
	}
}

func TestQuickMultiRegionBudgetInvariant(t *testing.T) {
	f := func(ops []uint16, maxRegions uint8) bool {
		b, _ := NewBudget(1 << 30)
		c, _ := NewCache(b, 2)
		if err := c.SetMaxRegions(int(maxRegions%4) + 1); err != nil {
			return false
		}
		for _, op := range ops {
			id := uint32(op % 64)
			cell := int(op % 8)
			switch op % 5 {
			case 0:
				c.AddSample(id, []float64{1, 2})
			case 1:
				c.SetRegion(cell, []uint32{id, id + 1}, [][]float64{{1, 1}, {2, 2}})
			case 2:
				c.Remove(id)
			case 3:
				c.HasRegion(cell)
			case 4:
				c.DropRegion()
			}
			if b.Used() != int64(c.Len())*TupleBytes(2) {
				return false
			}
			if len(c.ResidentRegions()) > c.MaxRegions() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
