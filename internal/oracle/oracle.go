package oracle

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/vec"
)

// Label is a binary relevance label, matching the paper's "Label Type:
// Binary" parameter (Table 1).
type Label int8

const (
	// Negative marks an irrelevant tuple.
	Negative Label = 0
	// Positive marks a relevant tuple.
	Positive Label = 1
)

// String renders the label for logs and test failures.
func (l Label) String() string {
	switch l {
	case Negative:
		return "negative"
	case Positive:
		return "positive"
	default:
		return fmt.Sprintf("Label(%d)", int8(l))
	}
}

// Oracle simulates the user: it executes the target region's range query
// once against the ground-truth dataset and afterwards answers membership
// questions exactly (§4.1, "we rely on this oracle set").
type Oracle struct {
	region Region
	// targets is the full (possibly multi-region) target union; empty for
	// single-region oracles built with New.
	targets MultiRegion
	// shape, when set, is the exact (possibly non-convex) target geometry
	// of an oracle built with NewShape; LabelPoint prefers it over the box
	// representations above.
	shape    Target
	ds       *dataset.Dataset
	relevant map[dataset.RowID]bool
	// labelsGiven counts label solicitations, the x-axis of Figures 3-5
	// (user effort).
	labelsGiven int
}

// New builds an oracle for the given region over the given dataset. The
// ground-truth set is materialized eagerly with a single scan.
func New(ds *dataset.Dataset, region Region) (*Oracle, error) {
	if ds.Dims() != region.Dims() {
		return nil, fmt.Errorf("oracle: dataset has %d dims, region has %d", ds.Dims(), region.Dims())
	}
	rel := make(map[dataset.RowID]bool)
	for _, id := range ds.Select(region.Box()) {
		rel[id] = true
	}
	return &Oracle{region: region, ds: ds, relevant: rel}, nil
}

// Region returns the target region the oracle answers for.
func (o *Oracle) Region() Region { return o.region }

// RelevantCount returns the size of the ground-truth set.
func (o *Oracle) RelevantCount() int { return len(o.relevant) }

// Relevant reports ground-truth membership for a tuple id without counting
// as a solicited label (used for accuracy evaluation, not exploration).
func (o *Oracle) Relevant(id dataset.RowID) bool { return o.relevant[id] }

// LabelID answers a label solicitation for tuple id, incrementing the user
// effort counter.
func (o *Oracle) LabelID(id dataset.RowID) Label {
	o.labelsGiven++
	if o.relevant[id] {
		return Positive
	}
	return Negative
}

// LabelPoint answers a label solicitation for an arbitrary point (used by
// components that hold values rather than ids, e.g. symbolic index points in
// tests). It uses the target geometry directly.
func (o *Oracle) LabelPoint(x vec.Point) Label {
	o.labelsGiven++
	if o.shape != nil {
		if o.shape.Contains(x) {
			return Positive
		}
		return Negative
	}
	if o.Targets().Contains(x) {
		return Positive
	}
	return Negative
}

// LabelsGiven returns how many labels the simulated user has provided.
func (o *Oracle) LabelsGiven() int { return o.labelsGiven }

// SeedRelevant returns one relevant tuple — the lowest-id member of the
// ground-truth set — modeling the standard IDE bootstrap where the user
// shows one example of what they are looking for. The returned row is a
// copy. It reports false when the region is empty. The solicitation is NOT
// counted here; the caller labels the tuple through LabelID as usual.
func (o *Oracle) SeedRelevant() (dataset.RowID, []float64, bool) {
	if len(o.relevant) == 0 {
		return 0, nil, false
	}
	best := dataset.RowID(0)
	first := true
	for id := range o.relevant {
		if first || id < best {
			best = id
			first = false
		}
	}
	return best, o.ds.CopyRow(best), true
}

// ResetEffort zeroes the label counter (used between experiment runs that
// share an oracle).
func (o *Oracle) ResetEffort() { o.labelsGiven = 0 }

// SeedRelevantIn returns the lowest-id relevant tuple inside the given
// region, for multi-region bootstraps where the user shows one example per
// interest. Like SeedRelevant, it does not count as a solicited label.
func (o *Oracle) SeedRelevantIn(r Region) (dataset.RowID, []float64, bool) {
	best := dataset.RowID(0)
	found := false
	for id := range o.relevant {
		if !r.Contains(o.ds.Row(id)) {
			continue
		}
		if !found || id < best {
			best = id
			found = true
		}
	}
	if !found {
		return 0, nil, false
	}
	return best, o.ds.CopyRow(best), true
}

// SizeClass names the paper's three region-cardinality classes.
type SizeClass string

const (
	// Small targets 0.1% of the dataset.
	Small SizeClass = "small"
	// Medium targets 0.4% of the dataset.
	Medium SizeClass = "medium"
	// Large targets 0.8% of the dataset.
	Large SizeClass = "large"
)

// Fraction returns the target selectivity of the class (Table 1).
func (c SizeClass) Fraction() (float64, error) {
	switch c {
	case Small:
		return 0.001, nil
	case Medium:
		return 0.004, nil
	case Large:
		return 0.008, nil
	default:
		return 0, fmt.Errorf("oracle: unknown size class %q", c)
	}
}

// FindRegion synthesizes a target region whose selectivity is close to the
// requested fraction. It seeds candidate centers on actual data points (so
// regions land where data exists, as real user interests do), then binary
// searches an isotropic scale factor on the per-dimension half-widths until
// the cardinality is within tol (relative) of the target. It returns the
// best region found across maxSeeds attempts.
func FindRegion(ds *dataset.Dataset, fraction, tol float64, seed int64, maxSeeds int) (Region, error) {
	if ds.Len() == 0 {
		return Region{}, fmt.Errorf("oracle: cannot place a region in an empty dataset")
	}
	if fraction <= 0 || fraction >= 1 {
		return Region{}, fmt.Errorf("oracle: fraction %g outside (0,1)", fraction)
	}
	if tol <= 0 {
		return Region{}, fmt.Errorf("oracle: tolerance %g must be positive", tol)
	}
	if maxSeeds <= 0 {
		maxSeeds = 8
	}
	bounds, err := ds.Bounds()
	if err != nil {
		return Region{}, err
	}
	domainWidths := bounds.Widths()
	target := fraction * float64(ds.Len())
	if target < 1 {
		return Region{}, fmt.Errorf("oracle: fraction %g selects under one tuple of %d", fraction, ds.Len())
	}

	rng := rand.New(rand.NewSource(seed))
	var best Region
	bestErr := math.Inf(1)
	for attempt := 0; attempt < maxSeeds; attempt++ {
		center := ds.CopyRow(dataset.RowID(rng.Intn(ds.Len())))
		// Base half-width: the width a uniform dataset would need, per
		// dimension, to capture `fraction` of the data. Clusters shrink it.
		base := make(vec.Point, ds.Dims())
		for i := range base {
			w := domainWidths[i] * math.Pow(fraction, 1/float64(ds.Dims()))
			if w <= 0 {
				w = 1
			}
			base[i] = w / 2
		}
		r, relErr := calibrate(ds, center, base, target)
		if relErr < bestErr {
			best, bestErr = r, relErr
			if bestErr <= tol {
				return best, nil
			}
		}
	}
	if math.IsInf(bestErr, 1) {
		return Region{}, fmt.Errorf("oracle: failed to synthesize a region for fraction %g", fraction)
	}
	return best, nil
}

// calibrate binary-searches a scale on the half-widths so the region's
// cardinality approaches target. It returns the calibrated region and the
// relative cardinality error achieved.
func calibrate(ds *dataset.Dataset, center, base vec.Point, target float64) (Region, float64) {
	scaled := func(s float64) Region {
		w := make(vec.Point, len(base))
		for i := range w {
			w[i] = base[i] * s
		}
		r, err := NewRegion(center, w)
		if err != nil {
			panic(err) // unreachable: base widths are positive
		}
		return r
	}
	lo, hi := 1e-4, 1.0
	// Grow hi until the region overshoots the target or saturates.
	for i := 0; i < 40; i++ {
		if float64(scaled(hi).Cardinality(ds)) >= target {
			break
		}
		hi *= 2
	}
	var best Region
	bestErr := math.Inf(1)
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		r := scaled(mid)
		card := float64(r.Cardinality(ds))
		relErr := math.Abs(card-target) / target
		if relErr < bestErr {
			best, bestErr = r, relErr
		}
		if card == target {
			break
		}
		if card < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return best, bestErr
}
