package oracle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/vec"
)

func twoRegions(t *testing.T) (Region, Region) {
	t.Helper()
	a, err := NewRegion(vec.Point{0, 0}, vec.Point{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRegion(vec.Point{10, 10}, vec.Point{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestNewMultiRegionValidation(t *testing.T) {
	if _, err := NewMultiRegion(); err == nil {
		t.Error("empty multi-region should fail")
	}
	a, _ := twoRegions(t)
	oneD, _ := NewRegion(vec.Point{0}, vec.Point{1})
	if _, err := NewMultiRegion(a, oneD); err == nil {
		t.Error("mixed dims should fail")
	}
}

func TestMultiRegionContainsUnion(t *testing.T) {
	a, b := twoRegions(t)
	m, err := NewMultiRegion(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dims() != 2 {
		t.Errorf("Dims = %d", m.Dims())
	}
	cases := []struct {
		x    vec.Point
		want bool
	}{
		{vec.Point{0, 0}, true},    // inside a
		{vec.Point{10, 10}, true},  // inside b
		{vec.Point{11.5, 9}, true}, // inside b only
		{vec.Point{5, 5}, false},   // between
		{vec.Point{-3, 0}, false},  // outside both
	}
	for _, c := range cases {
		if got := m.Contains(c.x); got != c.want {
			t.Errorf("Contains(%v) = %v", c.x, got)
		}
		// Relative distance agrees with membership at the <=1 boundary.
		if inside := m.RelativeDistance(c.x) <= 1; inside != c.want {
			t.Errorf("RelativeDistance(%v) disagreement", c.x)
		}
	}
	// Union distance is the min of component distances.
	x := vec.Point{5, 5}
	want := math.Min(a.RelativeDistance(x), b.RelativeDistance(x))
	if got := m.RelativeDistance(x); got != want {
		t.Errorf("RelativeDistance = %g, want %g", got, want)
	}
}

func TestNewMultiOracle(t *testing.T) {
	ds := dataset.New(dataset.MustSchema("x", "y"), 0)
	ds.Append([]float64{0, 0})    // in region a
	ds.Append([]float64{10, 10})  // in region b
	ds.Append([]float64{5, 5})    // in neither
	ds.Append([]float64{0.5, .5}) // in a
	a, b := twoRegions(t)
	m, _ := NewMultiRegion(a, b)
	o, err := NewMulti(ds, m)
	if err != nil {
		t.Fatal(err)
	}
	if o.RelevantCount() != 3 {
		t.Fatalf("RelevantCount = %d", o.RelevantCount())
	}
	if o.LabelID(0) != Positive || o.LabelID(1) != Positive || o.LabelID(2) != Negative {
		t.Error("multi-region labels wrong")
	}
	if o.LabelPoint(vec.Point{9, 9}) != Positive {
		t.Error("LabelPoint should use the union")
	}
	if got := len(o.Targets().Regions); got != 2 {
		t.Errorf("Targets has %d regions", got)
	}
	// Dims mismatch fails.
	one := dataset.New(dataset.MustSchema("x"), 0)
	one.Append([]float64{0})
	if _, err := NewMulti(one, m); err == nil {
		t.Error("dims mismatch should fail")
	}
}

func TestSingleRegionOracleTargets(t *testing.T) {
	ds := dataset.New(dataset.MustSchema("x", "y"), 0)
	ds.Append([]float64{0, 0})
	a, _ := twoRegions(t)
	o, err := New(ds, a)
	if err != nil {
		t.Fatal(err)
	}
	targets := o.Targets()
	if len(targets.Regions) != 1 {
		t.Fatalf("single-region oracle Targets has %d regions", len(targets.Regions))
	}
	if !vec.Equal(targets.Regions[0].Center, a.Center) {
		t.Error("Targets does not carry the region")
	}
}

func TestFindMultiRegionDisjoint(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 20000, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	m, err := FindMultiRegion(ds, 2, 0.01, 0.5, 7, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Regions) != 2 {
		t.Fatalf("%d regions", len(m.Regions))
	}
	if m.Regions[0].Box().Intersects(m.Regions[1].Box()) {
		t.Error("regions intersect")
	}
	sel := m.Selectivity(ds)
	if sel < 0.002 || sel > 0.05 {
		t.Errorf("union selectivity %g far from 0.01", sel)
	}
}

func TestFindMultiRegionValidation(t *testing.T) {
	ds, _ := dataset.GenerateSky(dataset.SkyConfig{N: 500, Seed: 1})
	if _, err := FindMultiRegion(ds, 0, 0.01, 0.5, 1, 4); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := FindMultiRegion(ds, 2, 0, 0.5, 1, 4); err == nil {
		t.Error("fraction=0 should fail")
	}
	if _, err := FindMultiRegion(ds, 2, 1.5, 0.5, 1, 4); err == nil {
		t.Error("fraction>1 should fail")
	}
}

func TestQuickMultiRegionUnionSemantics(t *testing.T) {
	a, b := func() (Region, Region) {
		a, _ := NewRegion(vec.Point{0, 0}, vec.Point{1, 2})
		b, _ := NewRegion(vec.Point{4, -3}, vec.Point{0.5, 1})
		return a, b
	}()
	m, err := NewMultiRegion(a, b)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := vec.Point{rng.NormFloat64() * 4, rng.NormFloat64() * 4}
		return m.Contains(x) == (a.Contains(x) || b.Contains(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
