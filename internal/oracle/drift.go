package oracle

import (
	"fmt"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/vec"
)

// Drift describes an interest region that moves as the user labels: the
// mid-session concept shift of an explorer whose idea of "interesting"
// sharpens or wanders while they answer solicitations. The region
// interpolates linearly from From to To (center and half-widths
// independently) over the first Over solicited labels and then stays at
// To. Both endpoints must share dimensionality; Over must be positive so
// the path is well defined.
type Drift struct {
	From Region
	To   Region
	// Over is the number of solicited labels across which the drift
	// completes; labels past Over see the To region.
	Over int
}

// NewDrift validates and builds a drift path.
func NewDrift(from, to Region, over int) (Drift, error) {
	if from.Dims() != to.Dims() {
		return Drift{}, fmt.Errorf("oracle: drift endpoints have %d and %d dims", from.Dims(), to.Dims())
	}
	if over <= 0 {
		return Drift{}, fmt.Errorf("oracle: drift must complete over a positive label count, got %d", over)
	}
	return Drift{From: from, To: to, Over: over}, nil
}

// At returns the interpolated region after `labels` solicited labels.
// Results are deterministic: the same label count always yields the same
// region, so two identically seeded sessions see identical ground truth.
func (d Drift) At(labels int) Region {
	if labels <= 0 {
		return d.From
	}
	if labels >= d.Over {
		return d.To
	}
	t := float64(labels) / float64(d.Over)
	dims := d.From.Dims()
	center := make(vec.Point, dims)
	widths := make(vec.Point, dims)
	for i := 0; i < dims; i++ {
		center[i] = d.From.Center[i] + t*(d.To.Center[i]-d.From.Center[i])
		widths[i] = d.From.Widths[i] + t*(d.To.Widths[i]-d.From.Widths[i])
	}
	return Region{Center: center, Widths: widths}
}

// DriftingOracle simulates a user whose target region moves while they
// label. Membership answers are evaluated against the region at the
// moment of each solicitation (the label count so far), so the label
// sequence for a fixed solicitation order is deterministic. Bootstrap
// seeding uses the initial (From) region — the user shows an example of
// what they wanted when the session began.
type DriftingOracle struct {
	drift Drift
	ds    *dataset.Dataset
	// initial is the ground truth of the From region, used for seeding.
	initial     map[dataset.RowID]bool
	labelsGiven int
}

// NewDrifting builds a drifting-interest oracle over the dataset.
func NewDrifting(ds *dataset.Dataset, d Drift) (*DriftingOracle, error) {
	if ds.Dims() != d.From.Dims() {
		return nil, fmt.Errorf("oracle: dataset has %d dims, drift has %d", ds.Dims(), d.From.Dims())
	}
	initial := make(map[dataset.RowID]bool)
	for _, id := range ds.Select(d.From.Box()) {
		initial[id] = true
	}
	return &DriftingOracle{drift: d, ds: ds, initial: initial}, nil
}

// Drift returns the oracle's drift path.
func (o *DriftingOracle) Drift() Drift { return o.drift }

// Current returns the region the next solicitation will be judged
// against.
func (o *DriftingOracle) Current() Region { return o.drift.At(o.labelsGiven) }

// LabelID answers a solicitation for tuple id against the region at the
// current label count, then advances the count (and with it, the drift).
func (o *DriftingOracle) LabelID(id dataset.RowID) Label {
	r := o.drift.At(o.labelsGiven)
	o.labelsGiven++
	if r.Contains(o.ds.Row(id)) {
		return Positive
	}
	return Negative
}

// LabelsGiven returns how many labels the simulated user has provided.
func (o *DriftingOracle) LabelsGiven() int { return o.labelsGiven }

// Relevant reports membership in the *initial* region without counting as
// a solicitation; the engine uses it to find an in-pool bootstrap seed.
func (o *DriftingOracle) Relevant(id dataset.RowID) bool { return o.initial[id] }

// SeedRelevant returns the lowest-id tuple of the initial region's ground
// truth (see Oracle.SeedRelevant); ok is false when the region is empty.
func (o *DriftingOracle) SeedRelevant() (dataset.RowID, []float64, bool) {
	if len(o.initial) == 0 {
		return 0, nil, false
	}
	best := dataset.RowID(0)
	first := true
	for id := range o.initial {
		if first || id < best {
			best = id
			first = false
		}
	}
	return best, o.ds.CopyRow(best), true
}
