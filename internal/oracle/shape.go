package oracle

import (
	"fmt"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/vec"
)

// Target is any membership geometry an oracle can answer for. Region and
// MultiRegion satisfy it; Ring adds a non-convex shape the paper's
// axis-aligned boxes cannot express. Implementations must be pure
// functions of the point (no internal state), so membership answers are
// deterministic.
type Target interface {
	Dims() int
	Contains(x vec.Point) bool
}

// Ring is a non-convex target: the points inside the Outer box but
// outside the Inner hole — an axis-aligned annulus. Explorers whose
// interest excludes a core ("bright but not saturated") produce exactly
// this shape, and it breaks the single-box convexity assumption that
// makes rectangular targets easy for range-based learners.
type Ring struct {
	Outer Region
	Inner Region
}

// NewRing validates and builds a ring. The inner hole must nest strictly
// inside the outer box (same center not required, but every inner face
// must lie inside the outer region), and both must share dimensionality.
func NewRing(outer, inner Region) (Ring, error) {
	if outer.Dims() != inner.Dims() {
		return Ring{}, fmt.Errorf("oracle: ring outer has %d dims, inner has %d", outer.Dims(), inner.Dims())
	}
	for i := range inner.Center {
		lo := inner.Center[i] - inner.Widths[i]
		hi := inner.Center[i] + inner.Widths[i]
		if lo < outer.Center[i]-outer.Widths[i] || hi > outer.Center[i]+outer.Widths[i] {
			return Ring{}, fmt.Errorf("oracle: ring inner region escapes the outer box on dim %d", i)
		}
		if inner.Widths[i] >= outer.Widths[i] {
			return Ring{}, fmt.Errorf("oracle: ring inner half-width %g >= outer %g on dim %d (empty ring)", inner.Widths[i], outer.Widths[i], i)
		}
	}
	return Ring{Outer: outer, Inner: inner}, nil
}

// ConcentricRing builds a ring whose hole shares the outer region's
// center, with inner half-widths = innerFrac * outer half-widths.
func ConcentricRing(outer Region, innerFrac float64) (Ring, error) {
	if innerFrac <= 0 || innerFrac >= 1 {
		return Ring{}, fmt.Errorf("oracle: ring inner fraction %g outside (0,1)", innerFrac)
	}
	w := make(vec.Point, outer.Dims())
	for i := range w {
		w[i] = outer.Widths[i] * innerFrac
	}
	inner, err := NewRegion(outer.Center, w)
	if err != nil {
		return Ring{}, err
	}
	return NewRing(outer, inner)
}

// Dims implements Target.
func (r Ring) Dims() int { return r.Outer.Dims() }

// Contains implements Target: inside the outer box, outside the hole.
func (r Ring) Contains(x vec.Point) bool {
	return r.Outer.Contains(x) && !r.Inner.Contains(x)
}

// LShape builds an L-shaped (non-convex) target as the union of two
// overlapping boxes sharing the corner at `corner`: a horizontal arm
// extending armLen along dim a and a vertical arm extending armLen along
// dim b, both of half-thickness `thick` in every other dimension. It is a
// MultiRegion, so the existing multi-region oracle machinery (seeding one
// example per component) applies unchanged.
func LShape(corner vec.Point, a, b int, armLen, thick float64) (MultiRegion, error) {
	dims := len(corner)
	if dims == 0 {
		return MultiRegion{}, fmt.Errorf("oracle: empty corner point")
	}
	if a < 0 || a >= dims || b < 0 || b >= dims || a == b {
		return MultiRegion{}, fmt.Errorf("oracle: L-shape arms need two distinct dims in [0,%d), got %d and %d", dims, a, b)
	}
	if armLen <= 0 || thick <= 0 {
		return MultiRegion{}, fmt.Errorf("oracle: L-shape arm length %g and thickness %g must be positive", armLen, thick)
	}
	arm := func(along int) (Region, error) {
		center := make(vec.Point, dims)
		widths := make(vec.Point, dims)
		for i := range corner {
			center[i] = corner[i]
			widths[i] = thick
		}
		center[along] = corner[along] + armLen/2
		widths[along] = armLen / 2
		return NewRegion(center, widths)
	}
	ra, err := arm(a)
	if err != nil {
		return MultiRegion{}, err
	}
	rb, err := arm(b)
	if err != nil {
		return MultiRegion{}, err
	}
	return NewMultiRegion(ra, rb)
}

// NewShape builds an oracle whose ground truth is an arbitrary Target
// geometry, materialized with one dataset scan. The representative region
// (Region()) is the target itself when it is a Region, the first
// component of a MultiRegion, or the outer box of a Ring; other shapes
// fall back to the dataset bounds so downstream consumers always have a
// box to reason about.
func NewShape(ds *dataset.Dataset, t Target) (*Oracle, error) {
	if ds.Dims() != t.Dims() {
		return nil, fmt.Errorf("oracle: dataset has %d dims, target has %d", ds.Dims(), t.Dims())
	}
	rel := make(map[dataset.RowID]bool)
	ds.Scan(func(id dataset.RowID, row []float64) bool {
		if t.Contains(row) {
			rel[id] = true
		}
		return true
	})
	rep, err := representative(ds, t)
	if err != nil {
		return nil, err
	}
	o := &Oracle{region: rep, shape: t, ds: ds, relevant: rel}
	if mr, ok := t.(MultiRegion); ok {
		o.targets = mr
	}
	return o, nil
}

// representative picks the box stand-in for a shape (see NewShape).
func representative(ds *dataset.Dataset, t Target) (Region, error) {
	switch s := t.(type) {
	case Region:
		return s, nil
	case MultiRegion:
		return s.Regions[0], nil
	case Ring:
		return s.Outer, nil
	}
	bounds, err := ds.Bounds()
	if err != nil {
		return Region{}, err
	}
	widths := bounds.Widths()
	for i, w := range widths {
		if w <= 0 {
			widths[i] = 1
		} else {
			widths[i] = w / 2
		}
	}
	return NewRegion(bounds.Center(), widths)
}
