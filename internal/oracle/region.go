// Package oracle implements the paper's user-simulation methodology (§4.1):
// a target interest region defined by a range query, an exact ground-truth
// ("oracle") set of relevant tuples, the Eq. (4) relative-distance measure,
// and utilities to synthesize regions of a prescribed cardinality
// (0.1% / 0.4% / 0.8% of the dataset for small / medium / large).
package oracle

import (
	"fmt"
	"math"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/vec"
)

// Region is a target interest region: a center point and one half-width per
// dimension. A tuple is relevant iff its Eq. (4) relative distance to the
// center is at most 1, i.e. iff it lies in the axis-aligned box
// [center-width, center+width].
type Region struct {
	Center vec.Point
	// Widths holds the per-dimension half-widths w_i of Eq. (4). All must be
	// positive.
	Widths vec.Point
}

// NewRegion validates and builds a region.
func NewRegion(center, widths vec.Point) (Region, error) {
	if len(center) != len(widths) {
		return Region{}, fmt.Errorf("oracle: center has %d dims, widths %d", len(center), len(widths))
	}
	if len(center) == 0 {
		return Region{}, fmt.Errorf("oracle: empty region")
	}
	for i, w := range widths {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return Region{}, fmt.Errorf("oracle: width %d = %g must be positive and finite", i, w)
		}
	}
	return Region{Center: vec.Clone(center), Widths: vec.Clone(widths)}, nil
}

// Dims returns the dimensionality of the region.
func (r Region) Dims() int { return len(r.Center) }

// RelativeDistance implements Eq. (4) of the paper:
//
//	d = max_i |x_i - c_i| / w_i
//
// Values <= 1 are inside the region; the value grows linearly with distance
// beyond the boundary.
func (r Region) RelativeDistance(x vec.Point) float64 {
	if len(x) != len(r.Center) {
		panic(fmt.Sprintf("oracle: point has %d dims, region has %d", len(x), len(r.Center)))
	}
	var d float64
	for i := range x {
		if v := math.Abs(x[i]-r.Center[i]) / r.Widths[i]; v > d {
			d = v
		}
	}
	return d
}

// Contains reports whether x is relevant (inside the range-query box).
func (r Region) Contains(x vec.Point) bool {
	return r.RelativeDistance(x) <= 1
}

// Box returns the region as an axis-aligned box.
func (r Region) Box() vec.Box {
	min := make(vec.Point, len(r.Center))
	max := make(vec.Point, len(r.Center))
	for i := range r.Center {
		min[i] = r.Center[i] - r.Widths[i]
		max[i] = r.Center[i] + r.Widths[i]
	}
	return vec.NewBox(min, max)
}

// Cardinality returns the number of dataset tuples inside the region.
func (r Region) Cardinality(ds *dataset.Dataset) int {
	return ds.CountIn(r.Box())
}

// Selectivity returns the fraction of dataset tuples inside the region.
func (r Region) Selectivity(ds *dataset.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	return float64(r.Cardinality(ds)) / float64(ds.Len())
}
