package oracle

import (
	"fmt"
	"math"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/vec"
)

// MultiRegion is a union of target interest regions. The paper's
// evaluation fixes "Number of relevant regions: 1" (Table 1), but the IDE
// systems UEI serves (REQUEST, AIDE) support disjunctive interests —
// several disjoint relevant regions explored in one session — so the
// oracle substrate models them too.
type MultiRegion struct {
	Regions []Region
}

// NewMultiRegion validates and bundles the component regions. At least one
// region is required and all must share dimensionality.
func NewMultiRegion(regions ...Region) (MultiRegion, error) {
	if len(regions) == 0 {
		return MultiRegion{}, fmt.Errorf("oracle: multi-region needs at least one region")
	}
	dims := regions[0].Dims()
	for i, r := range regions {
		if r.Dims() != dims {
			return MultiRegion{}, fmt.Errorf("oracle: region %d has %d dims, region 0 has %d", i, r.Dims(), dims)
		}
	}
	out := MultiRegion{Regions: make([]Region, len(regions))}
	copy(out.Regions, regions)
	return out, nil
}

// Dims returns the dimensionality.
func (m MultiRegion) Dims() int { return m.Regions[0].Dims() }

// Contains reports whether x is relevant — inside any component region.
func (m MultiRegion) Contains(x vec.Point) bool {
	for _, r := range m.Regions {
		if r.Contains(x) {
			return true
		}
	}
	return false
}

// RelativeDistance generalizes Eq. (4) to a union: the minimum relative
// distance over the component regions, so values <= 1 are inside.
func (m MultiRegion) RelativeDistance(x vec.Point) float64 {
	best := math.Inf(1)
	for _, r := range m.Regions {
		if d := r.RelativeDistance(x); d < best {
			best = d
		}
	}
	return best
}

// Cardinality returns the number of tuples inside the union (tuples in
// overlapping regions count once).
func (m MultiRegion) Cardinality(ds *dataset.Dataset) int {
	n := 0
	ds.Scan(func(_ dataset.RowID, row []float64) bool {
		if m.Contains(row) {
			n++
		}
		return true
	})
	return n
}

// Selectivity returns the fraction of tuples inside the union.
func (m MultiRegion) Selectivity(ds *dataset.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	return float64(m.Cardinality(ds)) / float64(ds.Len())
}

// NewMulti builds an oracle whose ground truth is the union of several
// regions — the multi-region exploration task.
func NewMulti(ds *dataset.Dataset, mr MultiRegion) (*Oracle, error) {
	if ds.Dims() != mr.Dims() {
		return nil, fmt.Errorf("oracle: dataset has %d dims, regions have %d", ds.Dims(), mr.Dims())
	}
	rel := make(map[dataset.RowID]bool)
	for _, r := range mr.Regions {
		for _, id := range ds.Select(r.Box()) {
			rel[id] = true
		}
	}
	return &Oracle{region: mr.Regions[0], targets: mr, ds: ds, relevant: rel}, nil
}

// Targets returns the oracle's full target union. Single-region oracles
// report a one-element union.
func (o *Oracle) Targets() MultiRegion {
	if len(o.targets.Regions) == 0 {
		return MultiRegion{Regions: []Region{o.region}}
	}
	return o.targets
}

// FindMultiRegion synthesizes k disjoint target regions whose combined
// selectivity approximates fraction. Each component gets an equal share of
// the cardinality budget; components are re-drawn (up to maxSeeds seeds
// each) until they do not intersect previously chosen ones.
func FindMultiRegion(ds *dataset.Dataset, k int, fraction, tol float64, seed int64, maxSeeds int) (MultiRegion, error) {
	if k < 1 {
		return MultiRegion{}, fmt.Errorf("oracle: region count %d must be positive", k)
	}
	if fraction <= 0 || fraction >= 1 {
		return MultiRegion{}, fmt.Errorf("oracle: fraction %g outside (0,1)", fraction)
	}
	share := fraction / float64(k)
	var chosen []Region
	for i := 0; i < k; i++ {
		var placed bool
		for attempt := 0; attempt < 8 && !placed; attempt++ {
			r, err := FindRegion(ds, share, tol, seed+int64(i*997+attempt*31), maxSeeds)
			if err != nil {
				return MultiRegion{}, fmt.Errorf("oracle: region %d: %w", i, err)
			}
			if intersectsAny(r, chosen) {
				continue
			}
			chosen = append(chosen, r)
			placed = true
		}
		if !placed {
			return MultiRegion{}, fmt.Errorf("oracle: could not place %d disjoint regions of share %g", k, share)
		}
	}
	return NewMultiRegion(chosen...)
}

func intersectsAny(r Region, others []Region) bool {
	box := r.Box()
	for _, o := range others {
		if box.Intersects(o.Box()) {
			return true
		}
	}
	return false
}
