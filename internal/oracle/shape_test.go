package oracle

import (
	"testing"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/vec"
)

func gridDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds := dataset.New(dataset.MustSchema("x", "y"), 0)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if _, err := ds.Append([]float64{float64(i), float64(j)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ds
}

func mustRegion(t *testing.T, center, widths []float64) Region {
	t.Helper()
	r, err := NewRegion(center, widths)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingMembership(t *testing.T) {
	outer := mustRegion(t, []float64{10, 10}, []float64{6, 6})
	ring, err := ConcentricRing(outer, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    vec.Point
		want bool
	}{
		{vec.Point{10, 10}, false}, // dead center: in the hole
		{vec.Point{12, 10}, false}, // still inside the 3-wide hole
		{vec.Point{14, 10}, true},  // in the annulus
		{vec.Point{10, 15}, true},  // in the annulus
		{vec.Point{17, 10}, false}, // outside the outer box
		{vec.Point{3, 3}, false},
	}
	for _, c := range cases {
		if got := ring.Contains(c.p); got != c.want {
			t.Errorf("ring.Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRingValidation(t *testing.T) {
	outer := mustRegion(t, []float64{10, 10}, []float64{5, 5})
	if _, err := NewRing(outer, mustRegion(t, []float64{10, 10}, []float64{5, 5})); err == nil {
		t.Fatal("inner as wide as outer must be rejected (empty ring)")
	}
	if _, err := NewRing(outer, mustRegion(t, []float64{14, 10}, []float64{3, 1})); err == nil {
		t.Fatal("inner escaping the outer box must be rejected")
	}
	if _, err := ConcentricRing(outer, 1.5); err == nil {
		t.Fatal("inner fraction >= 1 must be rejected")
	}
}

func TestShapeOracleRing(t *testing.T) {
	ds := gridDataset(t)
	outer := mustRegion(t, []float64{10, 10}, []float64{6, 6})
	ring, err := ConcentricRing(outer, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewShape(ds, ring)
	if err != nil {
		t.Fatal(err)
	}
	if o.RelevantCount() == 0 {
		t.Fatal("ring over a 20x20 grid must contain tuples")
	}
	// Every relevant tuple must satisfy the ring geometry; the hole must
	// be excluded even though the representative Region (outer box)
	// contains it.
	ds.Scan(func(id dataset.RowID, row []float64) bool {
		if o.Relevant(id) != ring.Contains(row) {
			t.Fatalf("tuple %d (%v): relevant=%v, ring=%v", id, row, o.Relevant(id), ring.Contains(row))
		}
		return true
	})
	if o.LabelPoint(vec.Point{10, 10}) != Negative {
		t.Fatal("the hole's center must label negative")
	}
	if o.LabelPoint(vec.Point{14, 10}) != Positive {
		t.Fatal("an annulus point must label positive")
	}
	if _, _, ok := o.SeedRelevant(); !ok {
		t.Fatal("ring oracle must be able to seed a positive")
	}
}

func TestLShape(t *testing.T) {
	ls, err := LShape(vec.Point{2, 2}, 0, 1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.Regions) != 2 {
		t.Fatalf("L-shape has %d components, want 2", len(ls.Regions))
	}
	cases := []struct {
		p    vec.Point
		want bool
	}{
		{vec.Point{2, 2}, true},    // the corner
		{vec.Point{10, 2}, true},   // along the horizontal arm
		{vec.Point{2, 10}, true},   // along the vertical arm
		{vec.Point{10, 10}, false}, // the notch the L excludes
	}
	for _, c := range cases {
		if got := ls.Contains(c.p); got != c.want {
			t.Errorf("lshape.Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := LShape(vec.Point{0, 0}, 0, 0, 5, 1); err == nil {
		t.Fatal("identical arm dims must be rejected")
	}
}

func TestDriftAt(t *testing.T) {
	from := mustRegion(t, []float64{0, 0}, []float64{2, 2})
	to := mustRegion(t, []float64{10, 10}, []float64{4, 4})
	d, err := NewDrift(from, to, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.At(0); !vec.Equal(got.Center, from.Center) {
		t.Fatalf("At(0) center = %v, want %v", got.Center, from.Center)
	}
	mid := d.At(5)
	if !vec.Equal(mid.Center, vec.Point{5, 5}) || !vec.Equal(mid.Widths, vec.Point{3, 3}) {
		t.Fatalf("At(5) = %+v, want center (5,5) widths (3,3)", mid)
	}
	if got := d.At(25); !vec.Equal(got.Center, to.Center) || !vec.Equal(got.Widths, to.Widths) {
		t.Fatalf("At past Over = %+v, want %+v", got, to)
	}
}

func TestDriftingOracleLabelsMove(t *testing.T) {
	ds := gridDataset(t)
	from := mustRegion(t, []float64{3, 3}, []float64{2, 2})
	to := mustRegion(t, []float64{16, 16}, []float64{2, 2})
	d, err := NewDrift(from, to, 4)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewDrifting(ds, d)
	if err != nil {
		t.Fatal(err)
	}
	// Tuple (3,3) is inside the initial region; (16,16) is inside the
	// final one. As labels accumulate the answers flip.
	idFrom := dataset.RowID(3*20 + 3)
	idTo := dataset.RowID(16*20 + 16)
	if !o.Relevant(idFrom) {
		t.Fatal("initial ground truth must contain the From center")
	}
	if o.LabelID(idFrom) != Positive {
		t.Fatal("label 0: From center must be positive")
	}
	if o.LabelID(idTo) != Negative {
		t.Fatal("label 1: To center must still be negative early in the drift")
	}
	for o.LabelsGiven() < 4 {
		o.LabelID(idFrom)
	}
	if o.LabelID(idFrom) != Negative {
		t.Fatal("post-drift: From center must have become negative")
	}
	if o.LabelID(idTo) != Positive {
		t.Fatal("post-drift: To center must have become positive")
	}
	if _, _, ok := o.SeedRelevant(); !ok {
		t.Fatal("drifting oracle must seed from the initial region")
	}
}

// TestDriftingOracleDeterministic pins the seeded-reproducibility
// contract: two oracles over the same dataset and drift answer identical
// label sequences for identical solicitation orders.
func TestDriftingOracleDeterministic(t *testing.T) {
	ds := gridDataset(t)
	from := mustRegion(t, []float64{3, 3}, []float64{3, 3})
	to := mustRegion(t, []float64{15, 15}, []float64{3, 3})
	d, err := NewDrift(from, to, 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []Label {
		o, err := NewDrifting(ds, d)
		if err != nil {
			t.Fatal(err)
		}
		var out []Label
		for i := 0; i < 30; i++ {
			out = append(out, o.LabelID(dataset.RowID((i*37)%ds.Len())))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("label %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
