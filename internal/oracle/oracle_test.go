package oracle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/vec"
)

func TestNewRegionValidation(t *testing.T) {
	if _, err := NewRegion(vec.Point{1, 2}, vec.Point{1}); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, err := NewRegion(vec.Point{}, vec.Point{}); err == nil {
		t.Error("empty region should fail")
	}
	if _, err := NewRegion(vec.Point{0}, vec.Point{0}); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewRegion(vec.Point{0}, vec.Point{-1}); err == nil {
		t.Error("negative width should fail")
	}
	if _, err := NewRegion(vec.Point{0}, vec.Point{math.NaN()}); err == nil {
		t.Error("NaN width should fail")
	}
	r, err := NewRegion(vec.Point{1, 2}, vec.Point{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dims() != 2 {
		t.Errorf("Dims = %d", r.Dims())
	}
}

func TestRelativeDistanceEq4(t *testing.T) {
	// Hand-computed Eq. (4) values.
	r, _ := NewRegion(vec.Point{0, 0}, vec.Point{1, 2})
	cases := []struct {
		x    vec.Point
		want float64
	}{
		{vec.Point{0, 0}, 0},
		{vec.Point{1, 0}, 1},     // on the boundary of dim 0
		{vec.Point{0, 2}, 1},     // on the boundary of dim 1
		{vec.Point{0.5, 1}, 0.5}, // max(0.5, 0.5)
		{vec.Point{2, 0}, 2},     // outside
		{vec.Point{-1, 4}, 2},    // max(1, 2)
	}
	for _, c := range cases {
		if got := r.RelativeDistance(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelativeDistance(%v) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestContainsMatchesBox(t *testing.T) {
	r, _ := NewRegion(vec.Point{5, 5}, vec.Point{1, 2})
	box := r.Box()
	if !vec.Equal(box.Min, vec.Point{4, 3}) || !vec.Equal(box.Max, vec.Point{6, 7}) {
		t.Fatalf("Box = %+v", box)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := vec.Point{rng.Float64()*10 - 1, rng.Float64()*10 - 1}
		return r.Contains(x) == box.Contains(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestOracleLabels(t *testing.T) {
	ds := dataset.New(dataset.MustSchema("x", "y"), 0)
	ds.Append([]float64{0, 0})   // inside
	ds.Append([]float64{0.5, 0}) // inside
	ds.Append([]float64{5, 5})   // outside
	r, _ := NewRegion(vec.Point{0, 0}, vec.Point{1, 1})
	o, err := New(ds, r)
	if err != nil {
		t.Fatal(err)
	}
	if o.RelevantCount() != 2 {
		t.Fatalf("RelevantCount = %d", o.RelevantCount())
	}
	if o.LabelID(0) != Positive || o.LabelID(2) != Negative {
		t.Error("LabelID wrong")
	}
	if o.LabelPoint(vec.Point{0.1, 0.1}) != Positive {
		t.Error("LabelPoint wrong")
	}
	if o.LabelsGiven() != 3 {
		t.Errorf("LabelsGiven = %d", o.LabelsGiven())
	}
	o.ResetEffort()
	if o.LabelsGiven() != 0 {
		t.Error("ResetEffort failed")
	}
	if !o.Relevant(1) || o.Relevant(2) {
		t.Error("Relevant wrong")
	}
	if o.LabelsGiven() != 0 {
		t.Error("Relevant must not count as user effort")
	}
}

func TestOracleDimsMismatch(t *testing.T) {
	ds := dataset.New(dataset.MustSchema("x"), 0)
	ds.Append([]float64{0})
	r, _ := NewRegion(vec.Point{0, 0}, vec.Point{1, 1})
	if _, err := New(ds, r); err == nil {
		t.Error("dims mismatch should fail")
	}
}

func TestLabelString(t *testing.T) {
	if Positive.String() != "positive" || Negative.String() != "negative" {
		t.Error("label strings wrong")
	}
	if Label(7).String() != "Label(7)" {
		t.Errorf("got %q", Label(7).String())
	}
}

func TestSizeClassFractions(t *testing.T) {
	for _, c := range []struct {
		cls  SizeClass
		want float64
	}{{Small, 0.001}, {Medium, 0.004}, {Large, 0.008}} {
		got, err := c.cls.Fraction()
		if err != nil || got != c.want {
			t.Errorf("%s: got %g, %v", c.cls, got, err)
		}
	}
	if _, err := SizeClass("huge").Fraction(); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestFindRegionHitsTargetCardinality(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 30000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, cls := range []SizeClass{Small, Medium, Large} {
		frac, _ := cls.Fraction()
		r, err := FindRegion(ds, frac, 0.25, 7, 12)
		if err != nil {
			t.Fatalf("%s: %v", cls, err)
		}
		got := r.Selectivity(ds)
		if got < frac*0.5 || got > frac*2 {
			t.Errorf("%s: selectivity %g not within 2x of %g", cls, got, frac)
		}
	}
}

func TestFindRegionValidation(t *testing.T) {
	ds, _ := dataset.GenerateSky(dataset.SkyConfig{N: 100, Seed: 1})
	if _, err := FindRegion(ds, 0, 0.1, 1, 4); err == nil {
		t.Error("fraction 0 should fail")
	}
	if _, err := FindRegion(ds, 1.5, 0.1, 1, 4); err == nil {
		t.Error("fraction > 1 should fail")
	}
	if _, err := FindRegion(ds, 0.5, 0, 1, 4); err == nil {
		t.Error("tol 0 should fail")
	}
	if _, err := FindRegion(ds, 0.0001, 0.1, 1, 4); err == nil {
		t.Error("sub-single-tuple fraction should fail")
	}
	empty := dataset.New(dataset.MustSchema("x"), 0)
	if _, err := FindRegion(empty, 0.1, 0.1, 1, 4); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestFindRegionDeterministic(t *testing.T) {
	ds, _ := dataset.GenerateSky(dataset.SkyConfig{N: 5000, Seed: 3})
	a, err := FindRegion(ds, 0.01, 0.2, 9, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindRegion(ds, 0.01, 0.2, 9, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(a.Center, b.Center) || !vec.Equal(a.Widths, b.Widths) {
		t.Error("FindRegion not deterministic for equal seeds")
	}
}
