// Package prefetch implements the background region loading of §3.2
// ("Tuning Interactive Exploration"): when the user sets a response-latency
// threshold σ that a synchronous region load would violate, UEI starts
// fetching the chunks of the anticipated next region in the background,
// θ = ⌈τ/σ⌉ iterations ahead, where τ is the average region load time.
//
// The prefetcher keeps at most one load in flight and at most one completed
// region buffered, matching UEI's default of one uncertain region resident
// at a time plus one in transit.
package prefetch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/uei-db/uei/internal/obs"
)

// ErrClosed is returned by operations on a closed prefetcher.
var ErrClosed = errors.New("prefetch: prefetcher is closed")

// LoadFunc loads a region's tuples from secondary storage. Implementations
// must be safe to call from the prefetcher's goroutine and must honor ctx:
// background loads receive a context the prefetcher cancels at Close, which
// is what makes shutdown deterministic while a load is in flight.
type LoadFunc func(ctx context.Context, cell int) (ids []uint32, rows [][]float64, err error)

// Result is a completed region load.
type Result struct {
	Cell     int
	IDs      []uint32
	Rows     [][]float64
	Err      error
	LoadTime time.Duration
}

// NoCell marks "no region" in-flight or buffered.
const NoCell = -1

// Prefetcher coordinates asynchronous region loads.
type Prefetcher struct {
	load LoadFunc
	// baseCtx parents every background load; cancel aborts an in-flight
	// load promptly at Close.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu           sync.Mutex
	inflightCell int
	inflightDone chan struct{}
	buffered     *Result
	emaNanos     float64
	loads        int
	closed       bool

	// Observability instruments (nil until Instrument; nil-safe no-ops).
	mStarts  *obs.Counter
	mDropped *obs.Counter
	mLoads   *obs.Counter
	hLoad    *obs.Histogram
	gQueue   *obs.Gauge
}

// Instrument registers the prefetcher's metrics: prefetch_starts_total
// (background loads accepted), prefetch_dropped_total (requests dropped
// because a different cell was in flight), prefetch_loads_total (completed
// loads, sync or async), the load-time histogram prefetch_load_seconds
// backing the τ estimate, and the queue-depth gauge prefetch_queue_depth
// (in-flight plus buffered regions, 0-2 by construction).
func (p *Prefetcher) Instrument(reg *obs.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mStarts = reg.Counter("prefetch_starts_total")
	p.mDropped = reg.Counter("prefetch_dropped_total")
	p.mLoads = reg.Counter("prefetch_loads_total")
	p.hLoad = reg.Histogram("prefetch_load_seconds", nil)
	p.gQueue = reg.Gauge("prefetch_queue_depth")
}

// updateQueueGaugeLocked publishes the in-flight + buffered depth.
func (p *Prefetcher) updateQueueGaugeLocked() {
	depth := 0
	if p.inflightCell != NoCell {
		depth++
	}
	if p.buffered != nil {
		depth++
	}
	p.gQueue.SetInt(int64(depth))
}

// New creates a prefetcher over the given loader.
func New(load LoadFunc) (*Prefetcher, error) {
	if load == nil {
		return nil, fmt.Errorf("prefetch: nil load function")
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Prefetcher{load: load, baseCtx: ctx, cancel: cancel, inflightCell: NoCell}, nil
}

// Start begins loading cell in the background. It reports whether a load
// was started (or is already in flight / buffered for that cell): false
// means the prefetcher is busy with a different cell and the request was
// dropped — the caller will simply load synchronously later if it still
// wants the region.
func (p *Prefetcher) Start(cell int) (bool, error) {
	if cell < 0 {
		return false, fmt.Errorf("prefetch: invalid cell %d", cell)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false, ErrClosed
	}
	if p.inflightCell == cell {
		return true, nil
	}
	if p.buffered != nil && p.buffered.Cell == cell {
		return true, nil
	}
	if p.inflightCell != NoCell {
		p.mDropped.Inc()
		return false, nil
	}
	done := make(chan struct{})
	p.inflightCell = cell
	p.inflightDone = done
	p.mStarts.Inc()
	p.updateQueueGaugeLocked()
	go p.run(cell, done)
	return true, nil
}

// run executes one background load and buffers its result.
func (p *Prefetcher) run(cell int, done chan struct{}) {
	start := time.Now()
	ids, rows, err := p.load(p.baseCtx, cell)
	elapsed := time.Since(start)

	p.mu.Lock()
	p.recordLocked(elapsed)
	p.buffered = &Result{Cell: cell, IDs: ids, Rows: rows, Err: err, LoadTime: elapsed}
	p.inflightCell = NoCell
	p.inflightDone = nil
	p.updateQueueGaugeLocked()
	p.mu.Unlock()
	close(done)
}

// TryTake returns the buffered result for cell, if one is ready, removing
// it from the buffer. It never blocks.
func (p *Prefetcher) TryTake(cell int) (*Result, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.buffered != nil && p.buffered.Cell == cell {
		r := p.buffered
		p.buffered = nil
		p.updateQueueGaugeLocked()
		return r, true
	}
	return nil, false
}

// Await returns the region for cell, blocking on an in-flight load of that
// cell or performing a synchronous load otherwise. The synchronous path
// also updates τ, since it is exactly the load the prefetcher tries to
// hide. A canceled ctx aborts the wait (and the synchronous load) and
// returns a Result carrying ctx.Err().
func (p *Prefetcher) Await(ctx context.Context, cell int) *Result {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return &Result{Cell: cell, Err: ErrClosed}
	}
	if p.buffered != nil && p.buffered.Cell == cell {
		r := p.buffered
		p.buffered = nil
		p.updateQueueGaugeLocked()
		p.mu.Unlock()
		return r
	}
	if p.inflightCell == cell {
		done := p.inflightDone
		p.mu.Unlock()
		select {
		case <-done:
		case <-ctx.Done():
			return &Result{Cell: cell, Err: ctx.Err()}
		}
		if r, ok := p.TryTake(cell); ok {
			return r
		}
		// Another caller raced us to the buffer; fall through to a
		// synchronous load.
	} else {
		p.mu.Unlock()
	}

	start := time.Now()
	ids, rows, err := p.load(ctx, cell)
	elapsed := time.Since(start)
	p.mu.Lock()
	p.recordLocked(elapsed)
	p.mu.Unlock()
	return &Result{Cell: cell, IDs: ids, Rows: rows, Err: err, LoadTime: elapsed}
}

// recordLocked folds one load time into the τ estimate (EMA, α = 0.3).
func (p *Prefetcher) recordLocked(d time.Duration) {
	p.loads++
	p.mLoads.Inc()
	p.hLoad.ObserveDuration(d)
	if p.loads == 1 {
		p.emaNanos = float64(d.Nanoseconds())
		return
	}
	const alpha = 0.3
	p.emaNanos = alpha*float64(d.Nanoseconds()) + (1-alpha)*p.emaNanos
}

// AvgLoadTime returns the current τ estimate (0 before any load).
func (p *Prefetcher) AvgLoadTime() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Duration(p.emaNanos)
}

// Loads returns how many region loads (sync or async) have completed.
func (p *Prefetcher) Loads() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.loads
}

// Theta computes θ = ⌈τ/σ⌉, the number of iterations of lead time the
// prefetcher needs to hide a region load behind iterations of latency σ.
// With no load history or a non-positive σ it returns 1 (start one
// iteration ahead).
func (p *Prefetcher) Theta(sigma time.Duration) int {
	if sigma <= 0 {
		return 1
	}
	tau := p.AvgLoadTime()
	if tau <= 0 {
		return 1
	}
	theta := int(math.Ceil(float64(tau) / float64(sigma)))
	if theta < 1 {
		theta = 1
	}
	return theta
}

// Close cancels any in-flight load, waits for its goroutine to exit, and
// shuts the prefetcher down. Cancellation (rather than waiting the load
// out) makes shutdown deterministic even mid-read: the loader observes
// ctx.Done at its next chunk boundary and returns promptly. Close is
// idempotent and safe to call concurrently with an in-flight load.
func (p *Prefetcher) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	done := p.inflightDone
	p.mu.Unlock()
	p.cancel()
	if done != nil {
		<-done
	}
}
