package prefetch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowLoader returns a LoadFunc that sleeps, then returns a row tagged with
// the cell id, counting invocations.
func slowLoader(delay time.Duration, calls *atomic.Int64) LoadFunc {
	return func(_ context.Context, cell int) ([]uint32, [][]float64, error) {
		calls.Add(1)
		time.Sleep(delay)
		return []uint32{uint32(cell)}, [][]float64{{float64(cell)}}, nil
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil loader should fail")
	}
}

func TestAwaitSynchronous(t *testing.T) {
	var calls atomic.Int64
	p, err := New(slowLoader(time.Millisecond, &calls))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	r := p.Await(context.Background(), 7)
	if r.Err != nil || len(r.IDs) != 1 || r.IDs[0] != 7 {
		t.Fatalf("Await = %+v", r)
	}
	if calls.Load() != 1 {
		t.Errorf("loader called %d times", calls.Load())
	}
	if p.AvgLoadTime() <= 0 {
		t.Error("τ not recorded")
	}
	if p.Loads() != 1 {
		t.Errorf("Loads = %d", p.Loads())
	}
}

func TestStartThenTryTake(t *testing.T) {
	var calls atomic.Int64
	p, _ := New(slowLoader(5*time.Millisecond, &calls))
	defer p.Close()
	ok, err := p.Start(3)
	if err != nil || !ok {
		t.Fatalf("Start = %v, %v", ok, err)
	}
	// Immediately, nothing is ready.
	if _, ready := p.TryTake(3); ready {
		t.Error("TryTake should miss while load is in flight")
	}
	// Poll until ready.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if r, ready := p.TryTake(3); ready {
			if r.Cell != 3 || r.Err != nil {
				t.Fatalf("result = %+v", r)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prefetch never completed")
		}
		time.Sleep(time.Millisecond)
	}
	// Taking again misses.
	if _, ready := p.TryTake(3); ready {
		t.Error("second TryTake should miss")
	}
}

func TestStartBusyDropsRequest(t *testing.T) {
	var calls atomic.Int64
	p, _ := New(slowLoader(20*time.Millisecond, &calls))
	defer p.Close()
	if ok, _ := p.Start(1); !ok {
		t.Fatal("first start should be accepted")
	}
	if ok, _ := p.Start(2); ok {
		t.Error("second start for a different cell should be dropped")
	}
	if ok, _ := p.Start(1); !ok {
		t.Error("re-start of the in-flight cell should report true")
	}
	p.Await(context.Background(), 1)
}

func TestAwaitJoinsInflight(t *testing.T) {
	var calls atomic.Int64
	p, _ := New(slowLoader(10*time.Millisecond, &calls))
	defer p.Close()
	p.Start(5)
	r := p.Await(context.Background(), 5)
	if r.Err != nil || r.Cell != 5 {
		t.Fatalf("r = %+v", r)
	}
	if calls.Load() != 1 {
		t.Errorf("loader called %d times; Await should join the in-flight load", calls.Load())
	}
}

func TestAwaitDifferentCellLoadsSynchronously(t *testing.T) {
	var calls atomic.Int64
	p, _ := New(slowLoader(5*time.Millisecond, &calls))
	defer p.Close()
	p.Start(1)
	r := p.Await(context.Background(), 2) // different cell: must not wait for cell 1's buffer
	if r.Cell != 2 || r.Err != nil {
		t.Fatalf("r = %+v", r)
	}
	p.Await(context.Background(), 1)
}

func TestLoadErrorPropagates(t *testing.T) {
	boom := errors.New("disk on fire")
	p, _ := New(func(_ context.Context, cell int) ([]uint32, [][]float64, error) {
		return nil, nil, boom
	})
	defer p.Close()
	r := p.Await(context.Background(), 1)
	if !errors.Is(r.Err, boom) {
		t.Errorf("err = %v", r.Err)
	}
	p.Start(2)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if r, ok := p.TryTake(2); ok {
			if !errors.Is(r.Err, boom) {
				t.Errorf("async err = %v", r.Err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async load never completed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTheta(t *testing.T) {
	var calls atomic.Int64
	p, _ := New(slowLoader(0, &calls))
	defer p.Close()
	if got := p.Theta(time.Second); got != 1 {
		t.Errorf("Theta with no history = %d, want 1", got)
	}
	// Seed τ with a synchronous load of known-ish duration, then check the
	// formula against the recorded τ directly.
	p.Await(context.Background(), 1)
	tau := p.AvgLoadTime()
	if tau <= 0 {
		t.Skip("load too fast to measure on this machine")
	}
	sigma := tau / 3
	want := int((tau + sigma - 1) / sigma)
	if got := p.Theta(sigma); got != want {
		t.Errorf("Theta = %d, want %d (τ=%v σ=%v)", got, want, tau, sigma)
	}
	if got := p.Theta(0); got != 1 {
		t.Errorf("Theta(0) = %d, want 1", got)
	}
}

func TestStartValidation(t *testing.T) {
	var calls atomic.Int64
	p, _ := New(slowLoader(0, &calls))
	defer p.Close()
	if _, err := p.Start(-1); err == nil {
		t.Error("negative cell should fail")
	}
}

func TestClose(t *testing.T) {
	var calls atomic.Int64
	p, _ := New(slowLoader(5*time.Millisecond, &calls))
	p.Start(1)
	p.Close()
	p.Close() // idempotent
	if _, err := p.Start(2); !errors.Is(err, ErrClosed) {
		t.Errorf("Start after close = %v", err)
	}
	if r := p.Await(context.Background(), 2); !errors.Is(r.Err, ErrClosed) {
		t.Errorf("Await after close = %v", r.Err)
	}
}

func TestConcurrentUse(t *testing.T) {
	var calls atomic.Int64
	p, _ := New(func(_ context.Context, cell int) ([]uint32, [][]float64, error) {
		calls.Add(1)
		return []uint32{uint32(cell)}, [][]float64{{float64(cell)}}, nil
	})
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cell := g*100 + i
				p.Start(cell)
				r := p.Await(context.Background(), cell)
				if r.Err != nil || r.Cell != cell {
					t.Errorf("goroutine %d: %+v", g, r)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if p.Loads() == 0 {
		t.Error("no loads recorded")
	}
}

func TestEMAMovesTowardRecentLoads(t *testing.T) {
	delays := []time.Duration{50 * time.Millisecond, time.Millisecond, time.Millisecond, time.Millisecond, time.Millisecond}
	i := 0
	p, _ := New(func(_ context.Context, cell int) ([]uint32, [][]float64, error) {
		d := delays[i%len(delays)]
		i++
		time.Sleep(d)
		return nil, nil, nil
	})
	defer p.Close()
	p.Await(context.Background(), 0)
	first := p.AvgLoadTime()
	for c := 1; c < 5; c++ {
		p.Await(context.Background(), c)
	}
	if last := p.AvgLoadTime(); last >= first {
		t.Errorf("EMA did not decay: first=%v last=%v", first, last)
	}
}

func ExamplePrefetcher_Theta() {
	p, _ := New(func(_ context.Context, cell int) ([]uint32, [][]float64, error) { return nil, nil, nil })
	defer p.Close()
	fmt.Println(p.Theta(500 * time.Millisecond))
	// Output: 1
}
