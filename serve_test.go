package uei_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"github.com/uei-db/uei"
)

// serveFixture builds a small store and returns its directory plus the
// dataset used to build it.
func serveFixture(t *testing.T, n int) (string, *uei.Dataset) {
	t.Helper()
	ds, err := uei.GenerateSky(uei.SkyConfig{N: n, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := uei.Build(context.Background(), dir, ds, uei.BuildOptions{TargetChunkBytes: 8 * 1024}); err != nil {
		t.Fatal(err)
	}
	return dir, ds
}

// TestFacadeSnapshotRoundTrip pauses an exploration through the public API
// and resumes it in a second process-worth of state: Session -> Snapshot ->
// Save -> ReadSnapshot -> NewSessionFromSnapshot over a freshly opened
// index. With the sample pinned (same seed and sample size), the resumed
// session must select exactly the tuples the original would have selected
// next.
func TestFacadeSnapshotRoundTrip(t *testing.T) {
	dir, ds := serveFixture(t, 5000)
	ctx := context.Background()
	opts := uei.Options{
		MemoryBudgetBytes: ds.SizeBytes() / 2,
		SampleSize:        250,
		Seed:              101,
	}
	region, err := uei.FindRegion(ds, 0.02, 0.5, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	user, err := uei.NewOracle(ds, region)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	scales := bounds.Widths()
	cfg := uei.SessionConfig{
		MaxLabels:        40,
		EstimatorFactory: func() uei.Classifier { return uei.NewDWKNN(7, scales) },
		Strategy:         uei.LeastConfidence{},
		Seed:             101,
		SeedWithPositive: true,
	}

	// advance steps a session until `labels` labels are spent, returning
	// the ids selected after the skip-th label.
	advance := func(sess *uei.Session, labels, skip int) []uint32 {
		t.Helper()
		var ids []uint32
		for sess.LabeledCount() < labels {
			if _, err := sess.Propose(ctx); err != nil {
				t.Fatalf("propose at %d labels: %v", sess.LabeledCount(), err)
			}
			info, err := sess.Resolve(ctx)
			if err != nil {
				t.Fatalf("resolve at %d labels: %v", sess.LabeledCount(), err)
			}
			if info != nil && sess.LabeledCount() > skip {
				ids = append(ids, info.SelectedID)
			}
		}
		return ids
	}

	idx, err := uei.Open(ctx, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	provider, err := uei.NewUEIProvider(idx)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := uei.NewSession(cfg, provider, uei.OracleLabeler{O: user})
	if err != nil {
		t.Fatal(err)
	}
	const pauseAt = 12
	advance(sess, pauseAt, pauseAt)

	// Pause: serialize the labeled set and read it back.
	var buf bytes.Buffer
	if err := sess.Snapshot().Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := uei.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.IDs) != pauseAt {
		t.Fatalf("snapshot holds %d labels, want %d", len(snap.IDs), pauseAt)
	}

	// Resume on a freshly opened index (same pinned options => same
	// sample) and compare the next selections against the original
	// session continuing uninterrupted.
	idx2, err := uei.Open(ctx, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer idx2.Close()
	provider2, err := uei.NewUEIProvider(idx2)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := uei.NewSessionFromSnapshot(cfg, provider2, uei.OracleLabeler{O: user}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.LabeledCount() != pauseAt {
		t.Fatalf("resumed session replayed %d labels, want %d", resumed.LabeledCount(), pauseAt)
	}

	const tail = 10
	want := advance(sess, pauseAt+tail, 0)
	// The resumed labeler counts from zero, so its budget check passes
	// for the same `tail` iterations; only the labeled count offsets.
	got := advance(resumed, pauseAt+tail, 0)
	if len(want) != len(got) || len(want) == 0 {
		t.Fatalf("selection counts diverged: original %d, resumed %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("selection %d diverged: original picked %d, resumed picked %d", i, want[i], got[i])
		}
	}
}

// TestFacadeServerSentinels exercises the server through the facade
// (NewSessionManager) and checks the re-exported sentinels round-trip with
// errors.Is across the API boundary.
func TestFacadeServerSentinels(t *testing.T) {
	dir, _ := serveFixture(t, 1500)
	ctx := context.Background()
	m, err := uei.NewSessionManager(ctx, uei.ServerConfig{
		StoreDir:              dir,
		TotalBudgetBytes:      2 << 20,
		MinSessionBudgetBytes: 32 << 10,
		MaxSessions:           1,
		Seed:                  101,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := uei.SessionSpec{MaxLabels: 5, Oracle: &uei.OracleSpec{Selectivity: 0.05}}
	info, err := m.Create(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Saturation: the single slot is taken.
	if _, err := m.Create(ctx, spec); !errors.Is(err, uei.ErrServerSaturated) {
		t.Fatalf("second create: %v, want ErrServerSaturated", err)
	}
	// Unknown session id.
	if _, err := m.Step(ctx, "nope", uei.StepRequest{}); !errors.Is(err, uei.ErrUnknownSession) {
		t.Fatalf("step unknown: %v, want ErrUnknownSession", err)
	}
	// Exploration-done surfaces through the step API as a final response,
	// and through Session.Propose as the sentinel; check the sentinel
	// aliases the internal one by driving the session to completion.
	for {
		resp, err := m.Step(ctx, info.ID, uei.StepRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Done {
			break
		}
	}
	// Draining: after Close, new work is refused.
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(ctx, spec); !errors.Is(err, uei.ErrDraining) {
		t.Fatalf("create while draining: %v, want ErrDraining", err)
	}
	if _, err := m.Step(ctx, info.ID, uei.StepRequest{}); !errors.Is(err, uei.ErrDraining) {
		t.Fatalf("step while draining: %v, want ErrDraining", err)
	}
	// ErrQueueFull and ErrExplorationDone are aliases of the internal
	// sentinels; a wrapped internal error must satisfy the facade export.
	if !errors.Is(wrapErr(uei.ErrQueueFull), uei.ErrQueueFull) {
		t.Error("ErrQueueFull does not round-trip through wrapping")
	}
	if !errors.Is(wrapErr(uei.ErrExplorationDone), uei.ErrExplorationDone) {
		t.Error("ErrExplorationDone does not round-trip through wrapping")
	}
}

func wrapErr(err error) error { return errors.Join(errors.New("outer"), err) }
