module github.com/uei-db/uei

go 1.22
