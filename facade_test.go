package uei_test

import (
	"context"
	"testing"

	"github.com/uei-db/uei"
)

// TestFacadeEndToEnd exercises the whole public surface exactly as a
// downstream consumer would: generate data, build and open the index, run
// a simulated exploration, and check the retrieved set is sane.
func TestFacadeEndToEnd(t *testing.T) {
	ds, err := uei.GenerateSky(uei.SkyConfig{N: 6000, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ctx := context.Background()
	if err := uei.Build(ctx, dir, ds, uei.BuildOptions{TargetChunkBytes: 8 * 1024}); err != nil {
		t.Fatal(err)
	}
	idx, err := uei.Open(ctx, dir, uei.Options{
		MemoryBudgetBytes: ds.SizeBytes() / 20,
		EnablePrefetch:    false,
		Seed:              101,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	region, err := uei.FindRegion(ds, 0.01, 0.5, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	user, err := uei.NewOracle(ds, region)
	if err != nil {
		t.Fatal(err)
	}
	provider, err := uei.NewUEIProvider(idx)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	scales := bounds.Widths()
	sess, err := uei.NewSession(uei.SessionConfig{
		MaxLabels:        35,
		EstimatorFactory: func() uei.Classifier { return uei.NewDWKNN(7, scales) },
		Strategy:         uei.LeastConfidence{},
		Seed:             101,
		SeedWithPositive: true,
	}, provider, uei.OracleLabeler{O: user})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelsUsed != 35 {
		t.Errorf("LabelsUsed = %d", res.LabelsUsed)
	}
	if res.Model == nil {
		t.Fatal("no model")
	}
	// The retrieved set should overlap the ground truth meaningfully.
	hits := 0
	for _, id := range res.Positive {
		if user.Relevant(uei.RowID(id)) {
			hits++
		}
	}
	if len(res.Positive) > 0 && hits == 0 {
		t.Error("retrieval has zero overlap with ground truth")
	}
	if st := idx.Stats(); st.RegionSwaps == 0 {
		t.Error("no region activity recorded")
	}
}

// TestFacadeBaselineEngine drives the DBMS surface through the facade.
func TestFacadeBaselineEngine(t *testing.T) {
	ds, err := uei.GenerateSky(uei.SkyConfig{N: 2000, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	table, err := uei.CreateTable(context.Background(), dir, ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer table.Close()
	if table.RowCount() != 2000 {
		t.Errorf("RowCount = %d", table.RowCount())
	}
	bt, err := uei.BuildBTree(context.Background(), dir, "ra", ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	n := 0
	if err := bt.RangeScan(0, 360, func(float64, uint32) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Errorf("range scan visited %d entries", n)
	}
	if _, err := uei.NewDBMSProvider(table); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeThrottle checks the bandwidth-model alias.
func TestFacadeThrottle(t *testing.T) {
	lim := uei.NewIOLimiter(1 << 20)
	lim.Acquire(1024)
	if b, _ := lim.Stats(); b != 1024 {
		t.Errorf("metered %d bytes", b)
	}
	var nilLim *uei.IOLimiter
	nilLim.Acquire(1 << 30) // nil limiter must be a no-op
}

// TestFacadeSchemaAndCSV exercises the dataset aliases.
func TestFacadeSchemaAndCSV(t *testing.T) {
	schema, err := uei.NewSchema("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Dims() != 2 {
		t.Errorf("Dims = %d", schema.Dims())
	}
	ds, _ := uei.GenerateSky(uei.SkyConfig{N: 20, Seed: 1})
	path := t.TempDir() + "/d.csv"
	if err := uei.WriteCSVFile(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := uei.ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 20 {
		t.Errorf("Len = %d", back.Len())
	}
}
