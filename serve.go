package uei

import (
	"context"

	"github.com/uei-db/uei/internal/ide"
	"github.com/uei-db/uei/internal/server"
)

// --- the multi-session exploration server (internal/server) ---

type (
	// SessionManager hosts concurrent exploration sessions over one shared
	// index, with budget arbitration, admission control, and idle eviction.
	SessionManager = server.Manager
	// ServerConfig parameterizes NewSessionManager.
	ServerConfig = server.Config
	// SessionSpec describes one hosted session (label budget, seed, oracle
	// simulation vs interactive labeling).
	SessionSpec = server.SessionSpec
	// OracleSpec describes a simulated user's target region.
	OracleSpec = server.OracleSpec
	// SessionInfo is a hosted session's externally visible state.
	SessionInfo = server.SessionInfo
	// StepRequest carries the optional label answering a proposal.
	StepRequest = server.StepRequest
	// StepResponse is one step's outcome.
	StepResponse = server.StepResponse
	// Proposal is one label solicitation from a step-driven Session.
	Proposal = ide.Proposal
	// ExternalLabeler adapts labels arriving from outside the process
	// (HTTP, a UI) to the Labeler interface; drive the session with Feed.
	ExternalLabeler = ide.ExternalLabeler
)

// Server sentinels, re-exported for errors.Is across the API boundary.
var (
	// ErrExplorationDone is returned by Session.Propose when the label
	// budget is spent or the candidate pool is exhausted; call Finish.
	ErrExplorationDone = ide.ErrExplorationDone
	// ErrServerSaturated is returned when the server cannot admit another
	// live session; back off and retry.
	ErrServerSaturated = server.ErrSaturated
	// ErrQueueFull is returned when a session's bounded step queue is full.
	ErrQueueFull = server.ErrQueueFull
	// ErrUnknownSession is returned for operations on nonexistent sessions.
	ErrUnknownSession = server.ErrUnknownSession
	// ErrDraining is returned for new work arriving during graceful
	// shutdown.
	ErrDraining = server.ErrDraining
)

// NewSessionManager opens the shared index from cfg.StoreDir and prepares
// the serving machinery; Close drains it.
func NewSessionManager(ctx context.Context, cfg ServerConfig) (*SessionManager, error) {
	return server.NewManager(ctx, cfg)
}

// Serve runs the session API plus the metrics/debug endpoints on addr until
// ctx is canceled, then drains gracefully: in-flight steps finish, live
// sessions are evicted to snapshots, and the shared index closes.
func Serve(ctx context.Context, addr string, m *SessionManager) error {
	return server.Serve(ctx, addr, m)
}
