package uei

import (
	"context"
	"io"
	"time"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/dbms"
	"github.com/uei-db/uei/internal/ide"
	"github.com/uei-db/uei/internal/iothrottle"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/memcache"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/oracle"
	"github.com/uei-db/uei/internal/shard"
	"github.com/uei-db/uei/internal/stream"
)

// --- sentinel errors ---
//
// The facade re-exports the internal sentinels so callers can errors.Is
// against them without importing internal packages. Every error that
// crosses the facade boundary wraps (never stringifies) these.
var (
	// ErrClosed is returned by index operations after Index.Close.
	ErrClosed = core.ErrClosed
	// ErrNotFitted is returned when a prediction or scoring path runs
	// before the model has been fitted (or with stale scores).
	ErrNotFitted = learn.ErrNotFitted
	// ErrBudgetExceeded is returned when a region load would overflow the
	// memory budget; region installs tolerate it by truncating.
	ErrBudgetExceeded = memcache.ErrBudgetExceeded
	// ErrNoCandidates is returned when a session needs an unlabeled
	// candidate and the pool is empty.
	ErrNoCandidates = ide.ErrNoCandidates
	// ErrLayoutMismatch is returned by Open when the directory's store
	// layout (flat vs sharded, or shard count) does not match what the
	// caller asked for.
	ErrLayoutMismatch = chunkstore.ErrLayoutMismatch
	// ErrShardUnavailable classifies degraded-shard failures; step errors
	// from a fully unavailable sharded index wrap it.
	ErrShardUnavailable = shard.ErrShardUnavailable
	// ErrReplicaExhausted marks a shard operation that failed on every
	// replica. It always travels with ErrShardUnavailable in the chain;
	// errors.Is against it to distinguish "all copies down" from a
	// single-copy miss.
	ErrReplicaExhausted = shard.ErrReplicaExhausted
	// ErrNotLive is returned by the write-path methods (Index.Append,
	// Index.Flush, Index.AdvanceSnapshot) of an index opened over a static
	// layout.
	ErrNotLive = core.ErrNotLive
	// ErrOutOfBounds is returned by Index.Append for rows outside the
	// bounds the live store's grid was pinned to at build time.
	ErrOutOfBounds = stream.ErrOutOfBounds
)

// --- v2 call options ---

// apiConfig collects the cross-cutting knobs the v2 constructors accept as
// functional options.
type apiConfig struct {
	limiter        *IOLimiter
	workers        int
	registry       *Registry
	tracer         *Tracer
	shards         int
	shardDeadline  time.Duration
	shardEndpoints []string
	replication    int
	hedgeDelay     time.Duration
	liveIngest     bool
	followLive     bool
	scoreKernel    *bool
	boundedStale   int
}

// Option configures a facade constructor (Open, CreateTable, OpenTable,
// BuildBTree). Options replace the positional limiter parameters of the v1
// API; see the README migration table.
type Option func(*apiConfig)

// WithIOLimiter meters the construct's read bandwidth. nil (the default)
// means unlimited.
func WithIOLimiter(l *IOLimiter) Option { return func(c *apiConfig) { c.limiter = l } }

// WithWorkers sizes the worker pool that parallelizes the per-iteration
// hot path (symbolic-point scoring, chunk-read fan-out). Zero — the
// default — selects runtime.GOMAXPROCS(0); 1 forces the serial path. It
// takes precedence over Options.Workers when both are set.
func WithWorkers(n int) Option { return func(c *apiConfig) { c.workers = n } }

// WithRegistry exports the construct's metrics to a shared registry. It
// takes precedence over Options.Registry when both are set.
func WithRegistry(r *Registry) Option { return func(c *apiConfig) { c.registry = r } }

// WithTracer records per-phase spans of every exploration iteration. It
// takes precedence over Options.Tracer when both are set.
func WithTracer(t *Tracer) Option { return func(c *apiConfig) { c.tracer = t } }

// WithShards pins the store layout Open requires: 1 requires the legacy
// flat layout, n > 1 requires a sharded layout with exactly n shards. The
// default (auto-detect) opens whichever layout the directory holds. A
// mismatch fails with ErrLayoutMismatch. It takes precedence over
// Options.Shards when both are set.
func WithShards(n int) Option { return func(c *apiConfig) { c.shards = n } }

// WithShardDeadline bounds every per-shard operation of a sharded index;
// shards that miss the deadline are skipped for the iteration (the step
// degrades instead of failing). Ignored by flat stores. It takes
// precedence over Options.ShardDeadline when both are set.
func WithShardDeadline(d time.Duration) Option { return func(c *apiConfig) { c.shardDeadline = d } }

// WithShardEndpoints serves the index through remote uei-shardd workers
// instead of a local store directory: Open handshakes the fleet, places
// each shard on workers by consistent hashing, and routes every per-shard
// operation over HTTP. The directory argument of Open is ignored (may be
// empty). Results are byte-identical to a local open of the same store.
// It takes precedence over Options.ShardEndpoints when both are set.
func WithShardEndpoints(endpoints ...string) Option {
	return func(c *apiConfig) { c.shardEndpoints = endpoints }
}

// WithReplication places each shard on n distinct workers (remote) or n
// logical replicas of the in-process backend (local sharded): operations
// fail over between replicas and a shard degrades only when all of them
// fail (the error then wraps ErrReplicaExhausted). With remote endpoints
// n must not exceed the endpoint count. It takes precedence over
// Options.Replication when both are set.
func WithReplication(n int) Option { return func(c *apiConfig) { c.replication = n } }

// WithHedgeDelay fires each per-shard operation on a second replica if
// the first has not answered within d; the first reply wins and the loser
// is cancelled. Requires replication > 1 to have any effect. It takes
// precedence over Options.HedgeDelay when both are set.
func WithHedgeDelay(d time.Duration) Option { return func(c *apiConfig) { c.hedgeDelay = d } }

// WithLiveIngest requires Open's directory to hold the live (stream)
// layout — a WAL-backed write store with MVCC snapshot epochs — failing
// with ErrLayoutMismatch otherwise. Live layouts are auto-detected either
// way; the flag only pins the expectation, the way WithShards pins the
// shard count. Index.Append and Index.Flush work on any index opened over
// a live layout.
func WithLiveIngest() Option { return func(c *apiConfig) { c.liveIngest = true } }

// WithFollowLive lets exploration sessions over the opened index advance
// their pinned snapshot to the newest committed epoch at iteration
// boundaries. Off by default: a session then explores exactly the epoch it
// opened, byte-identical to a static index over the same rows, no matter
// how many appends land meanwhile. Implies nothing on static layouts.
func WithFollowLive() Option { return func(c *apiConfig) { c.followLive = true } }

// WithScoreKernel routes symbolic-point scoring through the columnar
// kernel path: cache-friendly column blocks packed once at Open, batched
// distance/dot-product kernels, and — for DWKNN models refit on
// append-only labeled sets — exact incremental rescoring of only the
// cells whose k-nearest-neighbor set can have changed. The kernel path
// is bit-identical to the legacy per-row path and is ON by default;
// WithScoreKernel(false) is the escape hatch that restores the old path
// exactly. It takes precedence over Options.ScoreKernel when both are
// set.
func WithScoreKernel(on bool) Option { return func(c *apiConfig) { c.scoreKernel = &on } }

// WithBoundedStaleness lets models without an exact incremental rule
// (everything but DWKNN) reuse the previous complete score vector for
// n-1 consecutive retrains, rescoring in full every nth. Opt-in
// approximation — it trades bounded score staleness for iteration
// latency; the exact DWKNN delta path and the legacy path ignore it.
// Zero and 1 both mean every retrain rescores. It takes precedence over
// Options.BoundedStaleness when both are set.
func WithBoundedStaleness(n int) Option { return func(c *apiConfig) { c.boundedStale = n } }

func applyOptions(o []Option) apiConfig {
	var c apiConfig
	for _, fn := range o {
		fn(&c)
	}
	return c
}

// --- observability (internal/obs) ---

type (
	// Registry is a metrics registry (counters, gauges, histograms).
	Registry = obs.Registry
	// Tracer records per-phase spans of exploration iterations.
	Tracer = obs.Tracer
	// Trace is one hierarchical trace (a tree of spans sharing a trace id);
	// mint one per request with Tracer.NewTrace and carry it in a context.
	Trace = obs.Trace
	// Span is one timed operation within a trace (or a flat legacy span).
	Span = obs.Span
	// SLO accounts per-step latency against an interactivity budget:
	// rolling percentiles, violation counts, per-phase budget attribution.
	SLO = obs.SLO
)

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewTracer returns a tracer writing JSON span records to w.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// ContextWithTrace returns ctx carrying the trace; spans opened under it
// nest beneath the trace's root. A nil trace returns ctx unchanged, so the
// call is safe on the untraced path.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	return obs.ContextWithTrace(ctx, tr)
}

// TraceFromContext returns the trace carried by ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace { return obs.TraceFromContext(ctx) }

// StartSpan opens a span named name under ctx's current span (or as the
// trace root) and returns the child context to pass downward. Without a
// trace in ctx the span is measuring-only: End still returns the duration
// but nothing is emitted.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.StartSpan(ctx, name)
}

// NewSLO returns an SLO accountant publishing to reg. Zero budget selects
// obs.DefaultSLOBudget (500ms); zero window selects obs.DefaultSLOWindow.
func NewSLO(reg *Registry, budget time.Duration, window int) *SLO {
	return obs.NewSLO(reg, budget, window)
}

// --- the index (internal/core) ---

type (
	// Index is an opened Uncertainty Estimation Index.
	Index = core.Index
	// Options configures Open.
	Options = core.Options
	// BuildOptions configures the once-per-dataset Build phase.
	BuildOptions = core.BuildOptions
	// IndexStats reports an index's activity counters.
	IndexStats = core.Stats
)

// Build runs the Index Initialization phase (Algorithm 2 lines 1-11) into
// dir: vertical decomposition, per-dimension sorting, equal-size chunking,
// and manifest persistence.
func Build(ctx context.Context, dir string, ds *Dataset, opts BuildOptions) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return core.Build(dir, ds, opts)
}

// Open loads an index built by Build. Cross-cutting knobs (I/O limiter,
// worker-pool size, metrics registry, tracer) arrive as Options fields or
// functional options; the functional options win when both are set.
func Open(ctx context.Context, dir string, opts Options, o ...Option) (*Index, error) {
	c := applyOptions(o)
	if c.limiter != nil {
		opts.Limiter = c.limiter
	}
	if c.workers != 0 {
		opts.Workers = c.workers
	}
	if c.registry != nil {
		opts.Registry = c.registry
	}
	if c.tracer != nil {
		opts.Tracer = c.tracer
	}
	if c.shards != 0 {
		opts.Shards = c.shards
	}
	if c.shardDeadline != 0 {
		opts.ShardDeadline = c.shardDeadline
	}
	if len(c.shardEndpoints) > 0 {
		opts.ShardEndpoints = c.shardEndpoints
	}
	if c.replication != 0 {
		opts.Replication = c.replication
	}
	if c.hedgeDelay != 0 {
		opts.HedgeDelay = c.hedgeDelay
	}
	if c.liveIngest {
		opts.LiveIngest = true
	}
	if c.followLive {
		opts.FollowLive = true
	}
	if c.scoreKernel != nil {
		opts.ScoreKernel = c.scoreKernel
	}
	if c.boundedStale != 0 {
		opts.BoundedStaleness = c.boundedStale
	}
	return core.Open(ctx, dir, opts)
}

// BuildV1 is the pre-context Build.
//
// Deprecated: use Build with a context.
func BuildV1(dir string, ds *Dataset, opts BuildOptions) error {
	return Build(context.Background(), dir, ds, opts)
}

// OpenV1 is the pre-context Open with its positional limiter.
//
// Deprecated: use Open with a context and WithIOLimiter.
func OpenV1(dir string, opts Options, limiter *IOLimiter) (*Index, error) {
	return Open(context.Background(), dir, opts, WithIOLimiter(limiter))
}

// --- the exploration engine (internal/ide) ---

type (
	// Session runs the Algorithm 1 / Algorithm 2 interactive loop.
	Session = ide.Session
	// SessionConfig parameterizes a Session.
	SessionConfig = ide.Config
	// SessionResult summarizes a finished Session.
	SessionResult = ide.Result
	// IterationInfo describes one completed iteration.
	IterationInfo = ide.IterationInfo
	// Provider supplies per-iteration candidates (UEI or DBMS scheme).
	Provider = ide.Provider
	// UEIProvider runs the loop over an Index.
	UEIProvider = ide.UEIProvider
	// DBMSProvider runs the loop over the baseline storage engine.
	DBMSProvider = ide.DBMSProvider
	// Labeler answers label solicitations; implement it to put a human in
	// the loop, or use OracleLabeler for simulation.
	Labeler = ide.Labeler
	// PositiveSeeder optionally bootstraps a session with one relevant
	// example.
	PositiveSeeder = ide.PositiveSeeder
	// MultiPositiveSeeder optionally supplies one bootstrap positive per
	// component of a disjunctive interest.
	MultiPositiveSeeder = ide.MultiPositiveSeeder
	// OracleLabeler adapts an Oracle to the Labeler interface.
	OracleLabeler = ide.OracleLabeler
	// Snapshot captures a session's labeled set for pause/resume.
	Snapshot = ide.Snapshot
)

// NewSession validates the configuration and builds a session.
func NewSession(cfg SessionConfig, provider Provider, labeler Labeler) (*Session, error) {
	return ide.NewSession(cfg, provider, labeler)
}

// NewUEIProvider wraps an opened Index for use in a Session.
func NewUEIProvider(idx *Index) (*UEIProvider, error) {
	return ide.NewUEIProvider(idx)
}

// NewDBMSProvider wraps a baseline Table for use in a Session.
func NewDBMSProvider(table *Table) (*DBMSProvider, error) {
	return ide.NewDBMSProvider(table)
}

// NewSessionFromSnapshot resumes an exploration from a saved labeled set.
func NewSessionFromSnapshot(cfg SessionConfig, provider Provider, labeler Labeler, snap Snapshot) (*Session, error) {
	return ide.NewSessionFromSnapshot(cfg, provider, labeler, snap)
}

// ReadSnapshot parses a snapshot written by Snapshot.Save.
func ReadSnapshot(r io.Reader) (Snapshot, error) { return ide.ReadSnapshot(r) }

// --- query strategies (internal/al) ---

type (
	// Strategy scores unlabeled candidates; higher is more informative.
	Strategy = al.Scorer
	// LeastConfidence is Eq. (1)'s uncertainty sampling.
	LeastConfidence = al.LeastConfidence
	// Margin is the posterior-margin uncertainty variant.
	Margin = al.Margin
	// Entropy is the posterior-entropy uncertainty variant.
	Entropy = al.Entropy
	// Random is the passive baseline.
	Random = al.Random
	// QueryByCommittee scores by committee disagreement.
	QueryByCommittee = al.QueryByCommittee
	// ExpectedErrorReduction scores by lookahead uncertainty reduction.
	ExpectedErrorReduction = al.ExpectedErrorReduction
)

// NewRandom returns the seeded passive strategy.
func NewRandom(seed int64) *Random { return al.NewRandom(seed) }

// --- classifiers (internal/learn) ---

type (
	// Classifier is a binary probabilistic model.
	Classifier = learn.Classifier
	// DWKNN is the paper's dual weighted k-NN uncertainty estimator.
	DWKNN = learn.DWKNN
	// GaussianNB is a Gaussian naive Bayes classifier.
	GaussianNB = learn.GaussianNB
	// Logistic is an SGD logistic-regression classifier.
	Logistic = learn.Logistic
	// Committee is a bootstrap ensemble of classifiers.
	Committee = learn.Committee
)

// NewDWKNN returns a DWKNN with neighborhood size k (0 selects 7) and
// optional per-dimension distance scales.
func NewDWKNN(k int, scales []float64) *DWKNN { return learn.NewDWKNN(k, scales) }

// NewGaussianNB returns a Gaussian naive Bayes classifier.
func NewGaussianNB() *GaussianNB { return learn.NewGaussianNB() }

// NewLogistic returns a seeded logistic-regression classifier.
func NewLogistic(seed int64) *Logistic { return learn.NewLogistic(seed) }

// NewCommittee builds a bootstrap committee of n members.
func NewCommittee(n int, seed int64, factory func(i int) Classifier) (*Committee, error) {
	return learn.NewCommittee(n, seed, factory)
}

// --- data substrate (internal/dataset) ---

type (
	// Dataset is an in-memory numeric table.
	Dataset = dataset.Dataset
	// Schema is an ordered set of numeric attributes.
	Schema = dataset.Schema
	// RowID identifies a tuple.
	RowID = dataset.RowID
	// SkyConfig controls the synthetic SDSS-like generator.
	SkyConfig = dataset.SkyConfig
)

// NewSchema builds a schema from unique column names.
func NewSchema(names ...string) (Schema, error) { return dataset.NewSchema(names...) }

// GenerateSky produces a synthetic SDSS-like dataset (see DESIGN.md §3).
func GenerateSky(cfg SkyConfig) (*Dataset, error) { return dataset.GenerateSky(cfg) }

// ReadCSVFile loads a numeric CSV with a header row.
func ReadCSVFile(path string) (*Dataset, error) { return dataset.ReadCSVFile(path) }

// WriteCSVFile saves a dataset as CSV with a header row.
func WriteCSVFile(path string, ds *Dataset) error { return dataset.WriteCSVFile(path, ds) }

// --- evaluation oracle (internal/oracle) ---

type (
	// Region is a target interest region (center + per-dimension
	// half-widths, Eq. 4).
	Region = oracle.Region
	// MultiRegion is a union of target regions (disjunctive interests).
	MultiRegion = oracle.MultiRegion
	// Oracle simulates the user via ground-truth range-query membership.
	Oracle = oracle.Oracle
	// SizeClass names the paper's region-cardinality classes.
	SizeClass = oracle.SizeClass
)

// NewRegion validates and builds a target region.
func NewRegion(center, widths []float64) (Region, error) { return oracle.NewRegion(center, widths) }

// NewOracle builds a simulated user for the region over the dataset.
func NewOracle(ds *Dataset, region Region) (*Oracle, error) { return oracle.New(ds, region) }

// FindRegion synthesizes a region of approximately the given selectivity.
func FindRegion(ds *Dataset, fraction, tol float64, seed int64, maxSeeds int) (Region, error) {
	return oracle.FindRegion(ds, fraction, tol, seed, maxSeeds)
}

// NewMultiRegion bundles disjoint regions into a disjunctive target.
func NewMultiRegion(regions ...Region) (MultiRegion, error) { return oracle.NewMultiRegion(regions...) }

// NewMultiOracle builds a simulated user for a multi-region target.
func NewMultiOracle(ds *Dataset, mr MultiRegion) (*Oracle, error) { return oracle.NewMulti(ds, mr) }

// FindMultiRegion synthesizes k disjoint regions of the given combined
// selectivity.
func FindMultiRegion(ds *Dataset, k int, fraction, tol float64, seed int64, maxSeeds int) (MultiRegion, error) {
	return oracle.FindMultiRegion(ds, k, fraction, tol, seed, maxSeeds)
}

// --- baseline storage engine (internal/dbms) ---

type (
	// Table is the baseline heap-file table read through a buffer pool.
	Table = dbms.Table
	// BTree is the baseline's bulk-loaded attribute index.
	BTree = dbms.BTree
)

// CreateTable bulk-loads a dataset into a new heap file in dir.
func CreateTable(ctx context.Context, dir string, ds *Dataset, poolFrames int, o ...Option) (*Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := applyOptions(o)
	return dbms.CreateTable(dir, ds, poolFrames, c.limiter)
}

// OpenTable opens an existing heap table read-only.
func OpenTable(ctx context.Context, dir string, poolFrames int, o ...Option) (*Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := applyOptions(o)
	return dbms.OpenTable(dir, poolFrames, c.limiter)
}

// BuildBTree bulk-loads a B+ tree over one column of the dataset.
func BuildBTree(ctx context.Context, dir, column string, ds *Dataset, poolFrames int, o ...Option) (*BTree, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := applyOptions(o)
	return dbms.BuildIndex(dir, column, ds, poolFrames, c.limiter)
}

// CreateTableV1 is the pre-context CreateTable with its positional limiter.
//
// Deprecated: use CreateTable with a context and WithIOLimiter.
func CreateTableV1(dir string, ds *Dataset, poolFrames int, limiter *IOLimiter) (*Table, error) {
	return CreateTable(context.Background(), dir, ds, poolFrames, WithIOLimiter(limiter))
}

// OpenTableV1 is the pre-context OpenTable with its positional limiter.
//
// Deprecated: use OpenTable with a context and WithIOLimiter.
func OpenTableV1(dir string, poolFrames int, limiter *IOLimiter) (*Table, error) {
	return OpenTable(context.Background(), dir, poolFrames, WithIOLimiter(limiter))
}

// BuildBTreeV1 is the pre-context BuildBTree with its positional limiter.
//
// Deprecated: use BuildBTree with a context and WithIOLimiter.
func BuildBTreeV1(dir, column string, ds *Dataset, poolFrames int, limiter *IOLimiter) (*BTree, error) {
	return BuildBTree(context.Background(), dir, column, ds, poolFrames, WithIOLimiter(limiter))
}

// --- I/O bandwidth model (internal/iothrottle) ---

// IOLimiter meters read bandwidth with a token bucket; nil means
// unlimited.
type IOLimiter = iothrottle.Limiter

// NewIOLimiter returns a limiter with the given sustained bandwidth in
// bytes per second.
func NewIOLimiter(bytesPerSecond int64) *IOLimiter { return iothrottle.New(bytesPerSecond) }
