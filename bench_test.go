// This file regenerates every table and figure of the paper's
// evaluation as testing.B benchmarks (quick-mode scale; `cmd/uei-bench
// -full` runs the workstation-scale version):
//
//	BenchmarkTable1Defaults        — Table 1 (parameter rendering)
//	BenchmarkFig3AccuracySmall     — Figure 3 (0.1% region, UEI vs DBMS)
//	BenchmarkFig4AccuracyMedium    — Figure 4 (0.4% region)
//	BenchmarkFig5AccuracyLarge     — Figure 5 (0.8% region)
//	BenchmarkFig6ResponseTime      — Figure 6 (per-iteration latency)
//	BenchmarkAblation*             — ablations A1-A5 of DESIGN.md
//	Benchmark<Substrate>*          — microbenchmarks of the building blocks
//
// Accuracy/latency numbers are attached to the benchmark output via
// b.ReportMetric, so `go test -bench .` prints the figures' headline
// values alongside timing.
package uei_test

import (
	"context"
	"math/rand"
	"os"
	"sync"
	"testing"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/dbms"
	"github.com/uei-db/uei/internal/experiment"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/oracle"
	"github.com/uei-db/uei/internal/vec"
)

// benchConfig is the quick-mode scale used by all figure benchmarks.
func benchConfig() experiment.Config {
	cfg := experiment.DefaultConfig()
	cfg.N = 12_000
	cfg.Runs = 1
	cfg.MaxLabels = 50
	cfg.EvalSize = 2000
	cfg.EvalEvery = 10
	cfg.TargetChunkBytes = 16 * 1024
	cfg.MemoryBudgetFraction = 0.05
	return cfg
}

var (
	envOnce sync.Once
	envVal  *experiment.Env
	envErr  error
)

// sharedEnv builds the benchmark environment once per process.
func sharedEnv(b *testing.B) *experiment.Env {
	b.Helper()
	envOnce.Do(func() {
		dir, err := os.MkdirTemp("", "uei-bench-")
		if err != nil {
			envErr = err
			return
		}
		cfg := benchConfig()
		cfg.WorkDir = dir
		envVal, envErr = experiment.Setup(cfg)
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

func BenchmarkTable1Defaults(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if out := experiment.Table1(cfg); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// benchAccuracyFigure runs one accuracy figure's comparison and reports
// its headline values as custom metrics.
func benchAccuracyFigure(b *testing.B, class oracle.SizeClass) {
	env := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunComparison(env, class)
		if err != nil {
			b.Fatal(err)
		}
		ueiLat, dbmsLat := res.UEI.Latency.Snapshot(), res.DBMS.Latency.Snapshot()
		b.ReportMetric(res.UEI.FinalF1, "uei-final-f1")
		b.ReportMetric(res.DBMS.FinalF1, "dbms-final-f1")
		b.ReportMetric(float64(ueiLat.Mean.Nanoseconds()), "uei-ns/iter")
		b.ReportMetric(float64(dbmsLat.Mean.Nanoseconds()), "dbms-ns/iter")
		b.ReportMetric(float64(ueiLat.P95.Nanoseconds()), "uei-p95-ns/iter")
	}
}

func BenchmarkFig3AccuracySmall(b *testing.B)  { benchAccuracyFigure(b, oracle.Small) }
func BenchmarkFig4AccuracyMedium(b *testing.B) { benchAccuracyFigure(b, oracle.Medium) }
func BenchmarkFig5AccuracyLarge(b *testing.B)  { benchAccuracyFigure(b, oracle.Large) }

func BenchmarkFig6ResponseTime(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var results []*experiment.ComparisonResult
		for _, class := range []oracle.SizeClass{oracle.Small, oracle.Medium, oracle.Large} {
			res, err := experiment.RunComparison(env, class)
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, res)
		}
		b.ReportMetric(experiment.SpeedupAcrossClasses(results), "dbms/uei-speedup")
		// Response time is flat across region sizes (the paper's Fig. 6
		// observation); surface all three means.
		for _, r := range results {
			b.ReportMetric(float64(r.UEI.Latency.Snapshot().Mean.Nanoseconds()), "uei-"+string(r.Class)+"-ns/iter")
		}
	}
}

func BenchmarkAblationChunkSize(b *testing.B) {
	cfg := benchConfig()
	cfg.N = 6000
	cfg.MaxLabels = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiment.AblateChunkSize(cfg, []int{4 * 1024, 32 * 1024})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 2 {
			b.Fatal("unexpected ablation shape")
		}
	}
}

func BenchmarkAblationIndexPoints(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblateIndexPoints(env, []int{3, 5, 7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPrefetch(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblatePrefetch(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStrategy(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblateStrategy(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGamma(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblateGamma(env, []int{100, 400}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate microbenchmarks ---

var (
	microOnce  sync.Once
	microDS    *dataset.Dataset
	microStore *chunkstore.Store
	microGrid  *grid.Grid
	microErr   error
)

func microFixtures(b *testing.B) (*dataset.Dataset, *chunkstore.Store, *grid.Grid) {
	b.Helper()
	microOnce.Do(func() {
		microDS, microErr = dataset.GenerateSky(dataset.SkyConfig{N: 50_000, Seed: 77})
		if microErr != nil {
			return
		}
		dir, err := os.MkdirTemp("", "uei-micro-")
		if err != nil {
			microErr = err
			return
		}
		microStore, microErr = chunkstore.Build(dir, microDS, chunkstore.BuildOptions{TargetChunkBytes: 64 * 1024})
		if microErr != nil {
			return
		}
		microGrid, microErr = grid.New(microStore.Bounds(), 5)
	})
	if microErr != nil {
		b.Fatal(microErr)
	}
	return microDS, microStore, microGrid
}

func BenchmarkChunkstoreMergeRegion(b *testing.B) {
	_, store, g := microFixtures(b)
	boxes := make([]vec.Box, g.NumCells())
	for i := range boxes {
		box, err := g.CellBox(grid.CellID(i))
		if err != nil {
			b.Fatal(err)
		}
		boxes[i] = box
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.MergeRegion(context.Background(), boxes[i%len(boxes)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkstoreReadChunk(b *testing.B) {
	_, store, _ := microFixtures(b)
	chunks := store.Manifest().Chunks[0]
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meta := chunks[i%len(chunks)]
		if _, err := store.ReadChunk(context.Background(), meta); err != nil {
			b.Fatal(err)
		}
		bytes += meta.Bytes
	}
	b.SetBytes(bytes / int64(b.N))
}

func BenchmarkDWKNNPosterior(b *testing.B) {
	ds, _, _ := microFixtures(b)
	bounds, err := ds.Bounds()
	if err != nil {
		b.Fatal(err)
	}
	model := learn.NewDWKNN(7, bounds.Widths())
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, 200)
	y := make([]int, 200)
	for i := range X {
		X[i] = ds.CopyRow(dataset.RowID(rng.Intn(ds.Len())))
		y[i] = i % 2
	}
	if err := model.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	q := ds.CopyRow(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.PosteriorPositive(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridUncertaintyUpdate(b *testing.B) {
	ds, _, g := microFixtures(b)
	bounds, err := ds.Bounds()
	if err != nil {
		b.Fatal(err)
	}
	model := learn.NewDWKNN(7, bounds.Widths())
	X := [][]float64{ds.CopyRow(0), ds.CopyRow(1), ds.CopyRow(2), ds.CopyRow(3)}
	y := []int{0, 1, 0, 1}
	if err := model.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	centers := g.Centers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One full symbolic-point re-scoring pass (Algorithm 2 line 17).
		for _, c := range centers {
			if _, err := learn.Uncertainty(model, c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkDBMSFullScan(b *testing.B) {
	ds, _, _ := microFixtures(b)
	dir, err := os.MkdirTemp("", "uei-scanbench-")
	if err != nil {
		b.Fatal(err)
	}
	table, err := dbms.CreateTable(dir, ds, 32, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer table.Close()
	b.SetBytes(table.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := table.Scan(context.Background(), func(uint32, []float64) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
		if n != ds.Len() {
			b.Fatalf("scanned %d", n)
		}
	}
}

func BenchmarkBTreeRangeScan(b *testing.B) {
	ds, _, _ := microFixtures(b)
	dir, err := os.MkdirTemp("", "uei-btbench-")
	if err != nil {
		b.Fatal(err)
	}
	bt, err := dbms.BuildIndex(dir, "ra", ds, 32, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer bt.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		lo := float64(i%300) + 10
		if err := bt.RangeScan(lo, lo+20, func(float64, uint32) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
	}
}
