package uei_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/uei-db/uei"
)

// buildSmallStore builds a small store and returns its directory.
func buildSmallStore(t *testing.T, n int) (string, *uei.Dataset) {
	t.Helper()
	ds, err := uei.GenerateSky(uei.SkyConfig{N: n, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := uei.Build(context.Background(), dir, ds, uei.BuildOptions{TargetChunkBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	return dir, ds
}

// TestErrClosedRoundTrip: every index operation after Close must satisfy
// errors.Is(err, uei.ErrClosed) across the facade boundary.
func TestErrClosedRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir, ds := buildSmallStore(t, 500)
	idx, err := uei.Open(ctx, dir, uei.Options{MemoryBudgetBytes: ds.SizeBytes()})
	if err != nil {
		t.Fatal(err)
	}
	idx.Close()
	idx.Close() // idempotent through the facade too

	if err := idx.InitExploration(ctx); !errors.Is(err, uei.ErrClosed) {
		t.Errorf("InitExploration after Close: want ErrClosed, got %v", err)
	}
	model := uei.NewDWKNN(5, nil)
	if err := idx.UpdateUncertainty(ctx, model); !errors.Is(err, uei.ErrClosed) {
		t.Errorf("UpdateUncertainty after Close: want ErrClosed, got %v", err)
	}
	if _, err := idx.EnsureRegion(ctx, model); !errors.Is(err, uei.ErrClosed) {
		t.Errorf("EnsureRegion after Close: want ErrClosed, got %v", err)
	}
}

// TestErrNotFittedRoundTrip: selection before scoring and prediction before
// Fit both surface uei.ErrNotFitted.
func TestErrNotFittedRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir, ds := buildSmallStore(t, 500)
	idx, err := uei.Open(ctx, dir, uei.Options{MemoryBudgetBytes: ds.SizeBytes()})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	// MostUncertainCells before any UpdateUncertainty: scores are stale.
	if _, err := idx.MostUncertainCells(1); !errors.Is(err, uei.ErrNotFitted) {
		t.Errorf("MostUncertainCells before scoring: want ErrNotFitted, got %v", err)
	}
	// An unfitted classifier rejects prediction with the same sentinel.
	if _, err := uei.NewDWKNN(5, nil).PosteriorPositive([]float64{0, 0, 0, 0, 0}); !errors.Is(err, uei.ErrNotFitted) {
		t.Errorf("unfitted PosteriorPositive: want ErrNotFitted, got %v", err)
	}
}

// TestErrBudgetExceededRoundTrip: a memory budget too small for even one
// sample tuple fails InitExploration with uei.ErrBudgetExceeded.
func TestErrBudgetExceededRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir, _ := buildSmallStore(t, 200)
	idx, err := uei.Open(ctx, dir, uei.Options{MemoryBudgetBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if err := idx.InitExploration(ctx); !errors.Is(err, uei.ErrBudgetExceeded) {
		t.Errorf("want ErrBudgetExceeded, got %v", err)
	}
}

// TestErrNoCandidatesRoundTrip: when the target region covers the whole
// domain every label comes back positive, the engine keeps soliciting until
// the pool runs dry, and Run fails with uei.ErrNoCandidates.
func TestErrNoCandidatesRoundTrip(t *testing.T) {
	ctx := context.Background()
	ds, err := uei.GenerateSky(uei.SkyConfig{N: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := uei.CreateTable(ctx, t.TempDir(), ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	provider, err := uei.NewDBMSProvider(tb)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	widths := bounds.Widths()
	center := make([]float64, len(widths))
	for i, w := range widths {
		center[i] = bounds.Min[i] + w/2
		widths[i] = 10 * w // region swallows the whole domain
	}
	region, err := uei.NewRegion(center, widths)
	if err != nil {
		t.Fatal(err)
	}
	user, err := uei.NewOracle(ds, region)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := uei.NewSession(uei.SessionConfig{
		MaxLabels:        100,
		EstimatorFactory: func() uei.Classifier { return uei.NewDWKNN(3, nil) },
		Strategy:         uei.LeastConfidence{},
		Seed:             9,
	}, provider, uei.OracleLabeler{O: user})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx); !errors.Is(err, uei.ErrNoCandidates) {
		t.Errorf("want ErrNoCandidates, got %v", err)
	}
}

// TestErrLayoutMismatchRoundTrip: opening a store with the wrong layout
// expectation surfaces uei.ErrLayoutMismatch across the facade boundary.
func TestErrLayoutMismatchRoundTrip(t *testing.T) {
	ctx := context.Background()
	flatDir, ds := buildSmallStore(t, 500)
	shardedDir := t.TempDir()
	if err := uei.Build(ctx, shardedDir, ds, uei.BuildOptions{TargetChunkBytes: 4096, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	opts := uei.Options{MemoryBudgetBytes: ds.SizeBytes()}

	if _, err := uei.Open(ctx, shardedDir, opts, uei.WithShards(1)); !errors.Is(err, uei.ErrLayoutMismatch) {
		t.Errorf("sharded dir with WithShards(1): want ErrLayoutMismatch, got %v", err)
	}
	if _, err := uei.Open(ctx, flatDir, opts, uei.WithShards(2)); !errors.Is(err, uei.ErrLayoutMismatch) {
		t.Errorf("flat dir with WithShards(2): want ErrLayoutMismatch, got %v", err)
	}
	idx, err := uei.Open(ctx, shardedDir, opts, uei.WithShards(2), uei.WithShardDeadline(time.Second))
	if err != nil {
		t.Fatalf("matching layout: %v", err)
	}
	idx.Close()
}

// TestOwnerOfCellLayoutMismatch: asking a sharded coordinator about a
// cell id outside its grid surfaces the facade's ErrLayoutMismatch
// sentinel (wrapped with the offending cell id), not a bare formatted
// error — the routing table and the store layout disagree, which is
// exactly what the sentinel means.
func TestOwnerOfCellLayoutMismatch(t *testing.T) {
	ctx := context.Background()
	_, ds := buildSmallStore(t, 500)
	dir := t.TempDir()
	if err := uei.Build(ctx, dir, ds, uei.BuildOptions{TargetChunkBytes: 4096, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	idx, err := uei.Open(ctx, dir, uei.Options{MemoryBudgetBytes: ds.SizeBytes()}, uei.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	coord := idx.ShardCoordinator()
	if coord == nil {
		t.Fatal("sharded index has no coordinator")
	}
	if _, err := coord.OwnerOfCell(0); err != nil {
		t.Fatalf("in-range cell: %v", err)
	}
	_, err = coord.OwnerOfCell(1 << 30)
	if !errors.Is(err, uei.ErrLayoutMismatch) {
		t.Fatalf("out-of-range cell: want ErrLayoutMismatch in the chain, got %v", err)
	}
	if !strings.Contains(err.Error(), "1073741824") {
		t.Errorf("error %q does not name the offending cell id", err)
	}
}
